"""High-level facade for evaluating synchronization relations.

:class:`SynchronizationAnalyzer` answers the paper's Problem 4 for a
recorded execution:

(i)  *does a specific relation r(X, Y) hold?* — :meth:`holds`;
(ii) *which relations hold?* — :meth:`all_relations` /
     :meth:`base_relations` / :meth:`strongest`.

The engine is selectable (``"naive"`` / ``"polynomial"`` / ``"linear"``)
so applications, tests and benchmarks exercise the same API while
comparing the three evaluation strategies.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from ..events.event import EventId
from ..events.poset import Execution
from ..nonatomic.event import NonatomicEvent
from ..nonatomic.proxies import Proxy, ProxyDefinition, proxy_of
from .context import AnalysisContext
from .counting import ComparisonCounter
from .versioning import versioned_state
from .hierarchy import evaluate_all_pruned, maximal_true
from .linear import LinearEvaluator
from .naive import NaiveEvaluator
from .polynomial import PolynomialEvaluator
from .relations import (
    BASE_RELATIONS,
    FAMILY32,
    SUBTEST_KEYS,
    Relation,
    RelationSpec,
    SubtestKind,
    parse_spec,
    subtest_key,
)

__all__ = ["SynchronizationAnalyzer", "SharedVerdictCache", "ENGINES"]

#: The 24 distinct subtest keys grouped by kind — the batched fill
#: evaluates each group with one stacked comparison + one reduction.
_KEYS_BY_KIND = tuple(
    (kind, tuple(k for k in SUBTEST_KEYS if k[0] is kind))
    for kind in SubtestKind
)
_N_CUT_PAIR = sum(
    1 for k in SUBTEST_KEYS if k[0] is SubtestKind.EXISTS_CUT
)

SpecLike = str | Relation | RelationSpec

#: One batch query: ``(spec, X, Y)``.
Query = tuple[SpecLike, NonatomicEvent, NonatomicEvent]

#: Engine registry: name -> evaluator class.
ENGINES = {
    "naive": NaiveEvaluator,
    "polynomial": PolynomialEvaluator,
    "linear": LinearEvaluator,
}


@versioned_state(
    version="_version",
    caches=("_verdicts", "_operands"),
    guards=("invalidate", "_fresh"),
)
class SharedVerdictCache:
    """Memoized ``≪``-subtest verdicts shared across whole-family queries.

    Theorem 19/20 factor every Table-1 condition into one vector subtest
    (:func:`~repro.core.relations.subtest_key`); across the 40 evaluable
    specs (8 base + 32 family) only 24 subtests are distinct per ordered
    pair — 12 genuine cut-pair ``≪`` evaluations plus 12 extremal-row
    sweeps.  This cache stores those verdicts per ordered pair ``(X, Y)``
    so :meth:`SynchronizationAnalyzer.all_relations`,
    :meth:`~SynchronizationAnalyzer.base_relations` and
    :meth:`~SynchronizationAnalyzer.strongest` pay each subtest once
    instead of once per spec.

    Operand rows (the four cut timestamps and extremal vectors of each
    interval's L/U proxies) are drawn from the context's shared
    :class:`~repro.core.context.CutCache` in one batched
    :meth:`~repro.core.context.CutCache.stats` fill per interval.
    Entries are keyed to the execution
    :attr:`~repro.events.poset.Execution.version`; growth drops every
    verdict, so stale future-side subtests can never be served.

    Attributes
    ----------
    evals:
        Subtest evaluations actually performed (cache misses).
    cut_pair_evals:
        The subset of :attr:`evals` of kind
        :attr:`~repro.core.relations.SubtestKind.EXISTS_CUT` — the
        cut-pair ``≪`` evaluations proper (≤ 12 per ordered pair, well
        under the 16 ordered Table-2 cut pairs).
    hits:
        Subtest verdicts served from the cache.
    """

    __slots__ = ("context", "proxy_definition", "_version", "_verdicts",
                 "_operands", "evals", "cut_pair_evals", "hits")

    def __init__(
        self,
        context: "Execution | AnalysisContext",
        proxy_definition: ProxyDefinition = ProxyDefinition.PER_NODE,
    ) -> None:
        self.context = AnalysisContext.of(context)
        self.proxy_definition = proxy_definition
        self._version = self.context.execution.version
        self._verdicts: dict[tuple, dict[tuple, bool]] = {}
        self._operands: dict[frozenset, dict[tuple[str, str], np.ndarray]] = {}
        self.evals = 0
        self.cut_pair_evals = 0
        self.hits = 0

    def invalidate(self) -> None:
        """Drop every verdict and operand row; re-arm on current version."""
        self._verdicts.clear()
        self._operands.clear()
        self._version = self.context.execution.version

    def _fresh(self) -> None:
        if self.context.execution.version != self._version:
            self.invalidate()

    def _rows(self, z: NonatomicEvent) -> dict[tuple[str, str], np.ndarray]:
        """Operand rows of ``z``: stat name × proxy tag → |P| vector.

        One batched cut fill over ``(L_Z, U_Z)`` supplies all twelve
        rows any subtest key can select.
        """
        self._fresh()
        rec = self._operands.get(z.ids)
        if rec is None:
            proxies = (
                proxy_of(z, Proxy.L, self.proxy_definition),
                proxy_of(z, Proxy.U, self.proxy_definition),
            )
            stats = self.context.cut_cache.stats(proxies)
            rec = {}
            for i, tag in ((0, "L"), (1, "U")):
                for stat in ("c1", "c2", "c3", "c4", "first", "last"):
                    rec[(stat, tag)] = getattr(stats, stat)[i]
            self._operands[z.ids] = rec
        return rec

    def _fill_pair(
        self, pair: tuple, x: NonatomicEvent, y: NonatomicEvent
    ) -> dict[tuple, bool]:
        """Evaluate all 24 distinct subtests of ``(x, y)`` batched.

        Each subtest kind is answered by one stacked ``(k, P)``
        comparison + one axis reduction — three NumPy passes decide
        every verdict the 40-spec query surface can ask for.
        """
        self._fresh()
        rx, ry = self._rows(x), self._rows(y)
        verdicts: dict[tuple, bool] = {}
        for kind, keys in _KEYS_BY_KIND:
            ymat = np.stack([ry[yop] for _, yop, _ in keys])
            xmat = np.stack([rx[xop] for _, _, xop in keys])
            if kind is SubtestKind.EXISTS_CUT:
                out = (ymat >= xmat).any(axis=1)
            elif kind is SubtestKind.FORALL_PAST:
                out = (ymat >= xmat).all(axis=1)
            else:  # FORALL_FUTURE
                out = ((ymat == 0) | (ymat >= xmat)).all(axis=1)
            for key, v in zip(keys, out.tolist(), strict=True):
                verdicts[key] = v
        self.evals += len(SUBTEST_KEYS)
        self.cut_pair_evals += _N_CUT_PAIR
        self._verdicts[pair] = verdicts
        return verdicts

    def holds(
        self,
        spec: "Relation | RelationSpec",
        x: NonatomicEvent,
        y: NonatomicEvent,
    ) -> bool:
        """Verdict of ``spec`` on ``(x, y)`` through the subtest memo.

        The first query on a pair pays the batched 24-subtest fill;
        every subsequent query on that pair — whatever the spec — is a
        dict hit.
        """
        self._fresh()
        pair = (x.ids, y.ids)
        verdicts = self._verdicts.get(pair)
        if verdicts is None:
            verdicts = self._fill_pair(pair, x, y)
        else:
            self.hits += 1
        return verdicts[subtest_key(spec)]


class SynchronizationAnalyzer:
    """Evaluate synchronization conditions over one execution.

    Parameters
    ----------
    execution:
        The analysed execution, or an
        :class:`~repro.core.context.AnalysisContext`.  A bare execution
        resolves to its shared context, so every analyzer (and engine)
        over the same execution amortizes one cut cache.
    engine:
        ``"linear"`` (default, the paper's algorithm), ``"polynomial"``
        (prior-work baseline) or ``"naive"`` (definition-level).
    proxy_definition:
        Proxy definition for 32-family specs (Def. 2 per-node default).
    counted:
        If True, attach a :class:`ComparisonCounter` (exposed as
        :attr:`counter`) recording every integer comparison.
    check_disjoint:
        If True (default), :meth:`holds` raises when X and Y share
        atomic events — the precondition under which the linear
        conditions are exact.  Disable to explore the boundary
        behaviour the paper glosses (see DESIGN.md §2).
    jobs:
        Worker process count for :meth:`batch_holds`.  The default
        ``1`` keeps everything in-process (the serial planner); with
        ``jobs > 1`` batches of at least ``parallel_threshold`` queries
        are sharded across a process pool over shared-memory clock
        matrices (:class:`~repro.core.parallel.ParallelBatchExecutor`).
    parallel_threshold:
        Batch size below which :meth:`batch_holds` stays on the serial
        planner even when ``jobs > 1`` (pool dispatch overhead
        dominates small batches).

    Examples
    --------
    >>> from repro import TraceBuilder, SynchronizationAnalyzer
    >>> b = TraceBuilder(2)
    >>> a1 = b.internal(0); m = b.send(0); r = b.recv(1, m); y1 = b.internal(1)
    >>> ex = b.execute()
    >>> an = SynchronizationAnalyzer(ex)
    >>> X = an.interval([a1], name="X"); Y = an.interval([y1], name="Y")
    >>> an.holds("R1", X, Y)
    True
    """

    def __init__(
        self,
        execution: "Execution | AnalysisContext",
        engine: str = "linear",
        proxy_definition: ProxyDefinition = ProxyDefinition.PER_NODE,
        counted: bool = False,
        check_disjoint: bool = True,
        jobs: int = 1,
        parallel_threshold: int = 1024,
        **engine_kwargs: object,
    ) -> None:
        if engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; choose from {sorted(ENGINES)}"
            )
        self.context = AnalysisContext.of(execution)
        self.execution = self.context.execution
        self.engine_name = engine
        self.proxy_definition = proxy_definition
        self.counter = ComparisonCounter() if counted else None
        self.check_disjoint = check_disjoint
        self.jobs = int(jobs) if jobs else 1
        self.parallel_threshold = int(parallel_threshold)
        self._parallel = None
        self._engine = ENGINES[engine](
            self.context,
            counter=self.counter,
            proxy_definition=proxy_definition,
            **engine_kwargs,
        )
        # Whole-family queries route through the shared ≪-subtest verdict
        # cache (Theorem 19/20 factoring) when that is behaviour-neutral:
        # the linear engine's verdicts match the subtest forms exactly,
        # PER_NODE proxies satisfy the operand coincidences, and a
        # counted analyzer must keep its per-spec comparison accounting.
        self._verdict_cache = (
            self.context.verdict_cache(proxy_definition)
            if engine == "linear"
            and proxy_definition is ProxyDefinition.PER_NODE
            and not counted
            and not engine_kwargs
            else None
        )

    def close(self) -> None:
        """Release the parallel executor's pool and shared memory, if
        one was ever spun up.  Safe to call repeatedly; analyzers with
        ``jobs=1`` hold no resources."""
        if self._parallel is not None:
            self._parallel.close()
            self._parallel = None

    # ------------------------------------------------------------------
    # conveniences
    # ------------------------------------------------------------------
    def interval(
        self, ids: Iterable[EventId], name: str | None = None
    ) -> NonatomicEvent:
        """Create a nonatomic event over this execution."""
        return NonatomicEvent(self.execution, ids, name=name)

    @property
    def comparisons(self) -> int:
        """Total integer comparisons recorded (0 if not ``counted``)."""
        return self.counter.total if self.counter is not None else 0

    @property
    def verdict_cache(self) -> "SharedVerdictCache | None":
        """The shared ``≪``-subtest verdict cache backing the family
        queries, or ``None`` when this analyzer's configuration (engine,
        proxy definition, counting, ablations) bypasses it."""
        return self._verdict_cache

    def _check_pair(self, x: NonatomicEvent, y: NonatomicEvent) -> None:
        if self.check_disjoint and not x.is_disjoint(y):
            raise ValueError(
                "X and Y share atomic events; the evaluation conditions are "
                "exact only for disjoint intervals (pass check_disjoint=False "
                "to evaluate anyway)"
            )

    # ------------------------------------------------------------------
    # Problem 4 (i): one relation
    # ------------------------------------------------------------------
    def holds(self, spec: SpecLike, x: NonatomicEvent, y: NonatomicEvent) -> bool:
        """Does relation ``spec`` hold between ``x`` and ``y``?

        ``spec`` may be a :class:`Relation` (base relation applied to
        the full intervals), a :class:`RelationSpec` (32-family member
        applied to proxies), or a string such as ``"R2'"`` / ``"R2'(U,L)"``.
        """
        self._check_pair(x, y)
        if isinstance(spec, str):
            spec = parse_spec(spec)
        return self._engine_holds(spec, x, y)

    # ------------------------------------------------------------------
    # batched queries
    # ------------------------------------------------------------------
    def batch_holds(
        self,
        queries: "Sequence[Query] | Iterable[Query]",
        min_group: int = 4,
    ) -> list[bool]:
        """Answer many ``(spec, X, Y)`` queries, batched.

        The planner groups queries by relation spec; every group with at
        least ``min_group`` queries is routed through the vectorised
        all-pairs kernel (:class:`~repro.core.pairwise.IntervalSetMatrices`):
        the group's distinct intervals are stacked into one ``(k, P)``
        cut-timestamp matrix (drawn from the shared cut cache) and the
        whole group is answered by one NumPy broadcast instead of
        per-query Python calls.  Smaller groups fall back to the scalar
        engine path.  Results align with the input order.

        Notes
        -----
        * Verdicts are identical to :meth:`holds` on every query (the
          vectorised conditions are the sound full-``|P|``-scan forms).
        * The batch path is its own evaluation strategy: engine choice
          does not apply to it, and it does not tick the
          :class:`ComparisonCounter` (it is vectorised; count-exact
          experiments should query the scalar path).
        * ``check_disjoint`` applies per query, exactly as in
          :meth:`holds`.
        * With ``jobs > 1`` (constructor), batches of at least
          ``parallel_threshold`` queries are dispatched to the
          :class:`~repro.core.parallel.ParallelBatchExecutor` —
          identical verdicts, sharded across worker processes over
          shared-memory clock matrices.
        """
        qs = list(queries)
        if self.jobs > 1 and len(qs) >= self.parallel_threshold:
            if self._parallel is None:
                from .parallel import ParallelBatchExecutor

                self._parallel = ParallelBatchExecutor(
                    self.context,
                    jobs=self.jobs,
                    min_parallel=self.parallel_threshold,
                )
            return self._parallel.execute(
                qs,
                proxy_definition=self.proxy_definition,
                check_disjoint=self.check_disjoint,
            )
        out: list[bool] = [False] * len(qs)
        check = self.check_disjoint

        # single planning pass: validate, parse, group by spec (hashing
        # each *distinct spec object* once — RelationSpec hashing is not
        # free at planner scale) and assign interval rows as we go.
        # group record: [query indices, x rows, y rows, row_of, intervals]
        groups: dict[Relation | RelationSpec, list] = {}
        group_of_obj: dict[int, list] = {}
        for i, (spec, x, y) in enumerate(qs):
            if check and not x.ids.isdisjoint(y.ids):
                self._check_pair(x, y)  # raises with the full message
            if isinstance(spec, str):
                spec = parse_spec(spec)
                qs[i] = (spec, x, y)
            rec = group_of_obj.get(id(spec))
            if rec is None:
                rec = groups.setdefault(spec, [[], [], [], {}, []])
                group_of_obj[id(spec)] = rec
            idxs, xs, ys, row_of, intervals = rec
            idxs.append(i)
            kx = x.ids
            row = row_of.get(kx)
            if row is None:
                row = row_of[kx] = len(intervals)
                intervals.append(x)
            xs.append(row)
            ky = y.ids
            row = row_of.get(ky)
            if row is None:
                row = row_of[ky] = len(intervals)
                intervals.append(y)
            ys.append(row)

        for spec, (idxs, xs, ys, _row_of, intervals) in groups.items():
            if len(idxs) < max(min_group, 2):
                for i in idxs:
                    _s, x, y = qs[i]
                    out[i] = self._engine_holds(spec, x, y)
                continue
            # one (k, P) stack over the group's distinct intervals
            mats = self.context.matrices(intervals)
            if isinstance(spec, Relation):
                matrix = mats.relation_matrix(spec, mask_diagonal=False)
            else:
                matrix = mats.spec_matrix(
                    spec,
                    proxy_definition=self.proxy_definition,
                    mask_diagonal=False,
                )
            # one fancy-indexed gather instead of per-query scalar reads
            verdicts = matrix[np.asarray(xs, dtype=np.intp),
                              np.asarray(ys, dtype=np.intp)]
            for i, v in zip(idxs, verdicts.tolist(), strict=True):
                out[i] = v
        return out

    def _engine_holds(
        self,
        spec: "Relation | RelationSpec",
        x: NonatomicEvent,
        y: NonatomicEvent,
    ) -> bool:
        """Scalar-path dispatch for an already-parsed spec."""
        if isinstance(spec, Relation):
            return self._engine.evaluate(spec, x, y)
        return self._engine.evaluate_spec(spec, x, y)

    # ------------------------------------------------------------------
    # Problem 4 (ii): all relations
    # ------------------------------------------------------------------
    def _family_holds(
        self,
        spec: "Relation | RelationSpec",
        x: NonatomicEvent,
        y: NonatomicEvent,
    ) -> bool:
        """Family-query dispatch: shared ≪-subtest cache when available
        (Theorem 19/20 factoring — at most 24 distinct subtest verdicts
        per ordered pair across all 40 specs), scalar engine otherwise."""
        if self._verdict_cache is not None:
            return self._verdict_cache.holds(spec, x, y)
        return self._engine_holds(spec, x, y)

    def base_relations(
        self, x: NonatomicEvent, y: NonatomicEvent
    ) -> dict[Relation, bool]:
        """Evaluate all 8 base relations ``R(X, Y)``."""
        self._check_pair(x, y)
        return {r: self._family_holds(r, x, y) for r in BASE_RELATIONS}

    def all_relations(
        self,
        x: NonatomicEvent,
        y: NonatomicEvent,
        prune: bool = False,
    ) -> dict[RelationSpec, bool]:
        """Evaluate all 32 family relations ``r(X, Y)``.

        With ``prune=True``, results implied by already-evaluated ones
        are inferred through the hierarchy instead of tested (ablation
        A-3); the answer is identical either way.

        On the default configuration (linear engine, per-node proxies,
        uncounted) the per-spec tests are served from the shared
        ``≪``-subtest verdict cache: the 32 specs collapse onto 24
        distinct subtest keys per ordered pair (12 cut-pair ``≪``
        evaluations + 12 extremal-row sweeps), so the whole family costs
        a bounded number of vector comparisons however many specs it
        names.
        """
        self._check_pair(x, y)
        if prune:
            results, _ = evaluate_all_pruned(
                lambda spec: self._family_holds(spec, x, y), FAMILY32
            )
            return results
        return {
            spec: self._family_holds(spec, x, y) for spec in FAMILY32
        }

    def strongest(
        self, x: NonatomicEvent, y: NonatomicEvent
    ) -> tuple[RelationSpec, ...]:
        """The strongest 32-family relations holding between x and y.

        These are the maximal true relations under the implication
        hierarchy — the most informative synchronization facts.
        """
        return maximal_true(self.all_relations(x, y, prune=True))

    # ------------------------------------------------------------------
    # all-pairs evaluation
    # ------------------------------------------------------------------
    def relation_matrix(
        self,
        intervals: "Iterable[NonatomicEvent]",
        spec: SpecLike,
        mask_diagonal: bool = True,
    ) -> np.ndarray:
        """``M[i, j] = spec(intervals[i], intervals[j])`` for all pairs.

        Delegates to the vectorised kernel of
        :mod:`repro.core.pairwise` (NumPy broadcasting over stacked cut
        timestamps, drawn from the shared cut cache) — the fast path
        for pairwise sweeps such as the mutual-exclusion verifier.
        Engine choice does not apply here; the kernel is its own
        (equivalent) evaluation strategy.
        """
        if isinstance(spec, str):
            spec = parse_spec(spec)
        mats = self.context.matrices(list(intervals))
        if isinstance(spec, Relation):
            return mats.relation_matrix(spec, mask_diagonal=mask_diagonal)
        return mats.spec_matrix(
            spec,
            proxy_definition=self.proxy_definition,
            mask_diagonal=mask_diagonal,
        )
