"""High-level facade for evaluating synchronization relations.

:class:`SynchronizationAnalyzer` answers the paper's Problem 4 for a
recorded execution:

(i)  *does a specific relation r(X, Y) hold?* — :meth:`holds`;
(ii) *which relations hold?* — :meth:`all_relations` /
     :meth:`base_relations` / :meth:`strongest`.

The engine is selectable (``"naive"`` / ``"polynomial"`` / ``"linear"``)
so applications, tests and benchmarks exercise the same API while
comparing the three evaluation strategies.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple, Union

from ..events.event import EventId
from ..events.poset import Execution
from ..nonatomic.event import NonatomicEvent
from ..nonatomic.proxies import ProxyDefinition
from .counting import ComparisonCounter
from .hierarchy import evaluate_all_pruned, maximal_true
from .linear import LinearEvaluator
from .naive import NaiveEvaluator
from .polynomial import PolynomialEvaluator
from .relations import BASE_RELATIONS, FAMILY32, Relation, RelationSpec, parse_spec

__all__ = ["SynchronizationAnalyzer", "ENGINES"]

SpecLike = Union[str, Relation, RelationSpec]

#: Engine registry: name -> evaluator class.
ENGINES = {
    "naive": NaiveEvaluator,
    "polynomial": PolynomialEvaluator,
    "linear": LinearEvaluator,
}


class SynchronizationAnalyzer:
    """Evaluate synchronization conditions over one execution.

    Parameters
    ----------
    execution:
        The analysed execution (or anything with its interface).
    engine:
        ``"linear"`` (default, the paper's algorithm), ``"polynomial"``
        (prior-work baseline) or ``"naive"`` (definition-level).
    proxy_definition:
        Proxy definition for 32-family specs (Def. 2 per-node default).
    counted:
        If True, attach a :class:`ComparisonCounter` (exposed as
        :attr:`counter`) recording every integer comparison.
    check_disjoint:
        If True (default), :meth:`holds` raises when X and Y share
        atomic events — the precondition under which the linear
        conditions are exact.  Disable to explore the boundary
        behaviour the paper glosses (see DESIGN.md §2).

    Examples
    --------
    >>> from repro import TraceBuilder, SynchronizationAnalyzer
    >>> b = TraceBuilder(2)
    >>> a1 = b.internal(0); m = b.send(0); r = b.recv(1, m); y1 = b.internal(1)
    >>> ex = b.execute()
    >>> an = SynchronizationAnalyzer(ex)
    >>> X = an.interval([a1], name="X"); Y = an.interval([y1], name="Y")
    >>> an.holds("R1", X, Y)
    True
    """

    def __init__(
        self,
        execution: Execution,
        engine: str = "linear",
        proxy_definition: ProxyDefinition = ProxyDefinition.PER_NODE,
        counted: bool = False,
        check_disjoint: bool = True,
        **engine_kwargs,
    ) -> None:
        if engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; choose from {sorted(ENGINES)}"
            )
        self.execution = execution
        self.engine_name = engine
        self.counter = ComparisonCounter() if counted else None
        self.check_disjoint = check_disjoint
        self._engine = ENGINES[engine](
            execution,
            counter=self.counter,
            proxy_definition=proxy_definition,
            **engine_kwargs,
        )

    # ------------------------------------------------------------------
    # conveniences
    # ------------------------------------------------------------------
    def interval(
        self, ids: Iterable[EventId], name: str | None = None
    ) -> NonatomicEvent:
        """Create a nonatomic event over this execution."""
        return NonatomicEvent(self.execution, ids, name=name)

    @property
    def comparisons(self) -> int:
        """Total integer comparisons recorded (0 if not ``counted``)."""
        return self.counter.total if self.counter is not None else 0

    def _check_pair(self, x: NonatomicEvent, y: NonatomicEvent) -> None:
        if self.check_disjoint and not x.is_disjoint(y):
            raise ValueError(
                "X and Y share atomic events; the evaluation conditions are "
                "exact only for disjoint intervals (pass check_disjoint=False "
                "to evaluate anyway)"
            )

    # ------------------------------------------------------------------
    # Problem 4 (i): one relation
    # ------------------------------------------------------------------
    def holds(self, spec: SpecLike, x: NonatomicEvent, y: NonatomicEvent) -> bool:
        """Does relation ``spec`` hold between ``x`` and ``y``?

        ``spec`` may be a :class:`Relation` (base relation applied to
        the full intervals), a :class:`RelationSpec` (32-family member
        applied to proxies), or a string such as ``"R2'"`` / ``"R2'(U,L)"``.
        """
        self._check_pair(x, y)
        if isinstance(spec, str):
            spec = parse_spec(spec)
        if isinstance(spec, Relation):
            return self._engine.evaluate(spec, x, y)
        return self._engine.evaluate_spec(spec, x, y)

    # ------------------------------------------------------------------
    # Problem 4 (ii): all relations
    # ------------------------------------------------------------------
    def base_relations(
        self, x: NonatomicEvent, y: NonatomicEvent
    ) -> Dict[Relation, bool]:
        """Evaluate all 8 base relations ``R(X, Y)``."""
        self._check_pair(x, y)
        return {r: self._engine.evaluate(r, x, y) for r in BASE_RELATIONS}

    def all_relations(
        self,
        x: NonatomicEvent,
        y: NonatomicEvent,
        prune: bool = False,
    ) -> Dict[RelationSpec, bool]:
        """Evaluate all 32 family relations ``r(X, Y)``.

        With ``prune=True``, results implied by already-evaluated ones
        are inferred through the hierarchy instead of tested (ablation
        A-3); the answer is identical either way.
        """
        self._check_pair(x, y)
        if prune:
            results, _ = evaluate_all_pruned(
                lambda spec: self._engine.evaluate_spec(spec, x, y), FAMILY32
            )
            return results
        return {
            spec: self._engine.evaluate_spec(spec, x, y) for spec in FAMILY32
        }

    def strongest(
        self, x: NonatomicEvent, y: NonatomicEvent
    ) -> Tuple[RelationSpec, ...]:
        """The strongest 32-family relations holding between x and y.

        These are the maximal true relations under the implication
        hierarchy — the most informative synchronization facts.
        """
        return maximal_true(self.all_relations(x, y, prune=True))

    # ------------------------------------------------------------------
    # all-pairs evaluation
    # ------------------------------------------------------------------
    def relation_matrix(
        self,
        intervals: "Iterable[NonatomicEvent]",
        spec: SpecLike,
        mask_diagonal: bool = True,
    ):
        """``M[i, j] = spec(intervals[i], intervals[j])`` for all pairs.

        Delegates to the vectorised kernel of
        :mod:`repro.core.pairwise` (NumPy broadcasting over stacked cut
        timestamps) — the fast path for pairwise sweeps such as the
        mutual-exclusion verifier.  Engine choice does not apply here;
        the kernel is its own (equivalent) evaluation strategy.
        """
        from .pairwise import IntervalSetMatrices

        if isinstance(spec, str):
            spec = parse_spec(spec)
        mats = IntervalSetMatrices(list(intervals))
        if isinstance(spec, Relation):
            return mats.relation_matrix(spec, mask_diagonal=mask_diagonal)
        return mats.spec_matrix(spec, mask_diagonal=mask_diagonal)
