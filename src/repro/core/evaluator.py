"""High-level facade for evaluating synchronization relations.

:class:`SynchronizationAnalyzer` answers the paper's Problem 4 for a
recorded execution:

(i)  *does a specific relation r(X, Y) hold?* — :meth:`holds`;
(ii) *which relations hold?* — :meth:`all_relations` /
     :meth:`base_relations` / :meth:`strongest`.

The engine is selectable (``"naive"`` / ``"polynomial"`` / ``"linear"``)
so applications, tests and benchmarks exercise the same API while
comparing the three evaluation strategies.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple, Union

import numpy as np

from ..events.event import EventId
from ..events.poset import Execution
from ..nonatomic.event import NonatomicEvent
from ..nonatomic.proxies import ProxyDefinition
from .context import AnalysisContext
from .counting import ComparisonCounter
from .hierarchy import evaluate_all_pruned, maximal_true
from .linear import LinearEvaluator
from .naive import NaiveEvaluator
from .polynomial import PolynomialEvaluator
from .relations import BASE_RELATIONS, FAMILY32, Relation, RelationSpec, parse_spec

__all__ = ["SynchronizationAnalyzer", "ENGINES"]

SpecLike = Union[str, Relation, RelationSpec]

#: One batch query: ``(spec, X, Y)``.
Query = Tuple[SpecLike, NonatomicEvent, NonatomicEvent]

#: Engine registry: name -> evaluator class.
ENGINES = {
    "naive": NaiveEvaluator,
    "polynomial": PolynomialEvaluator,
    "linear": LinearEvaluator,
}


class SynchronizationAnalyzer:
    """Evaluate synchronization conditions over one execution.

    Parameters
    ----------
    execution:
        The analysed execution, or an
        :class:`~repro.core.context.AnalysisContext`.  A bare execution
        resolves to its shared context, so every analyzer (and engine)
        over the same execution amortizes one cut cache.
    engine:
        ``"linear"`` (default, the paper's algorithm), ``"polynomial"``
        (prior-work baseline) or ``"naive"`` (definition-level).
    proxy_definition:
        Proxy definition for 32-family specs (Def. 2 per-node default).
    counted:
        If True, attach a :class:`ComparisonCounter` (exposed as
        :attr:`counter`) recording every integer comparison.
    check_disjoint:
        If True (default), :meth:`holds` raises when X and Y share
        atomic events — the precondition under which the linear
        conditions are exact.  Disable to explore the boundary
        behaviour the paper glosses (see DESIGN.md §2).
    jobs:
        Worker process count for :meth:`batch_holds`.  The default
        ``1`` keeps everything in-process (the serial planner); with
        ``jobs > 1`` batches of at least ``parallel_threshold`` queries
        are sharded across a process pool over shared-memory clock
        matrices (:class:`~repro.core.parallel.ParallelBatchExecutor`).
    parallel_threshold:
        Batch size below which :meth:`batch_holds` stays on the serial
        planner even when ``jobs > 1`` (pool dispatch overhead
        dominates small batches).

    Examples
    --------
    >>> from repro import TraceBuilder, SynchronizationAnalyzer
    >>> b = TraceBuilder(2)
    >>> a1 = b.internal(0); m = b.send(0); r = b.recv(1, m); y1 = b.internal(1)
    >>> ex = b.execute()
    >>> an = SynchronizationAnalyzer(ex)
    >>> X = an.interval([a1], name="X"); Y = an.interval([y1], name="Y")
    >>> an.holds("R1", X, Y)
    True
    """

    def __init__(
        self,
        execution: "Execution | AnalysisContext",
        engine: str = "linear",
        proxy_definition: ProxyDefinition = ProxyDefinition.PER_NODE,
        counted: bool = False,
        check_disjoint: bool = True,
        jobs: int = 1,
        parallel_threshold: int = 1024,
        **engine_kwargs,
    ) -> None:
        if engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; choose from {sorted(ENGINES)}"
            )
        self.context = AnalysisContext.of(execution)
        self.execution = self.context.execution
        self.engine_name = engine
        self.proxy_definition = proxy_definition
        self.counter = ComparisonCounter() if counted else None
        self.check_disjoint = check_disjoint
        self.jobs = int(jobs) if jobs else 1
        self.parallel_threshold = int(parallel_threshold)
        self._parallel = None
        self._engine = ENGINES[engine](
            self.context,
            counter=self.counter,
            proxy_definition=proxy_definition,
            **engine_kwargs,
        )

    def close(self) -> None:
        """Release the parallel executor's pool and shared memory, if
        one was ever spun up.  Safe to call repeatedly; analyzers with
        ``jobs=1`` hold no resources."""
        if self._parallel is not None:
            self._parallel.close()
            self._parallel = None

    # ------------------------------------------------------------------
    # conveniences
    # ------------------------------------------------------------------
    def interval(
        self, ids: Iterable[EventId], name: str | None = None
    ) -> NonatomicEvent:
        """Create a nonatomic event over this execution."""
        return NonatomicEvent(self.execution, ids, name=name)

    @property
    def comparisons(self) -> int:
        """Total integer comparisons recorded (0 if not ``counted``)."""
        return self.counter.total if self.counter is not None else 0

    def _check_pair(self, x: NonatomicEvent, y: NonatomicEvent) -> None:
        if self.check_disjoint and not x.is_disjoint(y):
            raise ValueError(
                "X and Y share atomic events; the evaluation conditions are "
                "exact only for disjoint intervals (pass check_disjoint=False "
                "to evaluate anyway)"
            )

    # ------------------------------------------------------------------
    # Problem 4 (i): one relation
    # ------------------------------------------------------------------
    def holds(self, spec: SpecLike, x: NonatomicEvent, y: NonatomicEvent) -> bool:
        """Does relation ``spec`` hold between ``x`` and ``y``?

        ``spec`` may be a :class:`Relation` (base relation applied to
        the full intervals), a :class:`RelationSpec` (32-family member
        applied to proxies), or a string such as ``"R2'"`` / ``"R2'(U,L)"``.
        """
        self._check_pair(x, y)
        if isinstance(spec, str):
            spec = parse_spec(spec)
        return self._engine_holds(spec, x, y)

    # ------------------------------------------------------------------
    # batched queries
    # ------------------------------------------------------------------
    def batch_holds(
        self,
        queries: "Sequence[Query] | Iterable[Query]",
        min_group: int = 4,
    ) -> List[bool]:
        """Answer many ``(spec, X, Y)`` queries, batched.

        The planner groups queries by relation spec; every group with at
        least ``min_group`` queries is routed through the vectorised
        all-pairs kernel (:class:`~repro.core.pairwise.IntervalSetMatrices`):
        the group's distinct intervals are stacked into one ``(k, P)``
        cut-timestamp matrix (drawn from the shared cut cache) and the
        whole group is answered by one NumPy broadcast instead of
        per-query Python calls.  Smaller groups fall back to the scalar
        engine path.  Results align with the input order.

        Notes
        -----
        * Verdicts are identical to :meth:`holds` on every query (the
          vectorised conditions are the sound full-``|P|``-scan forms).
        * The batch path is its own evaluation strategy: engine choice
          does not apply to it, and it does not tick the
          :class:`ComparisonCounter` (it is vectorised; count-exact
          experiments should query the scalar path).
        * ``check_disjoint`` applies per query, exactly as in
          :meth:`holds`.
        * With ``jobs > 1`` (constructor), batches of at least
          ``parallel_threshold`` queries are dispatched to the
          :class:`~repro.core.parallel.ParallelBatchExecutor` —
          identical verdicts, sharded across worker processes over
          shared-memory clock matrices.
        """
        qs = list(queries)
        if self.jobs > 1 and len(qs) >= self.parallel_threshold:
            if self._parallel is None:
                from .parallel import ParallelBatchExecutor

                self._parallel = ParallelBatchExecutor(
                    self.context,
                    jobs=self.jobs,
                    min_parallel=self.parallel_threshold,
                )
            return self._parallel.execute(
                qs,
                proxy_definition=self.proxy_definition,
                check_disjoint=self.check_disjoint,
            )
        out: List[bool] = [False] * len(qs)
        check = self.check_disjoint

        # single planning pass: validate, parse, group by spec (hashing
        # each *distinct spec object* once — RelationSpec hashing is not
        # free at planner scale) and assign interval rows as we go.
        # group record: [query indices, x rows, y rows, row_of, intervals]
        groups: Dict[Union[Relation, RelationSpec], list] = {}
        group_of_obj: Dict[int, list] = {}
        for i, (spec, x, y) in enumerate(qs):
            if check and not x.ids.isdisjoint(y.ids):
                self._check_pair(x, y)  # raises with the full message
            if isinstance(spec, str):
                spec = parse_spec(spec)
                qs[i] = (spec, x, y)
            rec = group_of_obj.get(id(spec))
            if rec is None:
                rec = groups.setdefault(spec, [[], [], [], {}, []])
                group_of_obj[id(spec)] = rec
            idxs, xs, ys, row_of, intervals = rec
            idxs.append(i)
            kx = x.ids
            row = row_of.get(kx)
            if row is None:
                row = row_of[kx] = len(intervals)
                intervals.append(x)
            xs.append(row)
            ky = y.ids
            row = row_of.get(ky)
            if row is None:
                row = row_of[ky] = len(intervals)
                intervals.append(y)
            ys.append(row)

        for spec, (idxs, xs, ys, _row_of, intervals) in groups.items():
            if len(idxs) < max(min_group, 2):
                for i in idxs:
                    _s, x, y = qs[i]
                    out[i] = self._engine_holds(spec, x, y)
                continue
            # one (k, P) stack over the group's distinct intervals
            mats = self.context.matrices(intervals)
            if isinstance(spec, Relation):
                matrix = mats.relation_matrix(spec, mask_diagonal=False)
            else:
                matrix = mats.spec_matrix(
                    spec,
                    proxy_definition=self.proxy_definition,
                    mask_diagonal=False,
                )
            # one fancy-indexed gather instead of per-query scalar reads
            verdicts = matrix[np.asarray(xs, dtype=np.intp),
                              np.asarray(ys, dtype=np.intp)]
            for i, v in zip(idxs, verdicts.tolist()):
                out[i] = v
        return out

    def _engine_holds(
        self,
        spec: "Relation | RelationSpec",
        x: NonatomicEvent,
        y: NonatomicEvent,
    ) -> bool:
        """Scalar-path dispatch for an already-parsed spec."""
        if isinstance(spec, Relation):
            return self._engine.evaluate(spec, x, y)
        return self._engine.evaluate_spec(spec, x, y)

    # ------------------------------------------------------------------
    # Problem 4 (ii): all relations
    # ------------------------------------------------------------------
    def base_relations(
        self, x: NonatomicEvent, y: NonatomicEvent
    ) -> Dict[Relation, bool]:
        """Evaluate all 8 base relations ``R(X, Y)``."""
        self._check_pair(x, y)
        return {r: self._engine.evaluate(r, x, y) for r in BASE_RELATIONS}

    def all_relations(
        self,
        x: NonatomicEvent,
        y: NonatomicEvent,
        prune: bool = False,
    ) -> Dict[RelationSpec, bool]:
        """Evaluate all 32 family relations ``r(X, Y)``.

        With ``prune=True``, results implied by already-evaluated ones
        are inferred through the hierarchy instead of tested (ablation
        A-3); the answer is identical either way.
        """
        self._check_pair(x, y)
        if prune:
            results, _ = evaluate_all_pruned(
                lambda spec: self._engine.evaluate_spec(spec, x, y), FAMILY32
            )
            return results
        return {
            spec: self._engine.evaluate_spec(spec, x, y) for spec in FAMILY32
        }

    def strongest(
        self, x: NonatomicEvent, y: NonatomicEvent
    ) -> Tuple[RelationSpec, ...]:
        """The strongest 32-family relations holding between x and y.

        These are the maximal true relations under the implication
        hierarchy — the most informative synchronization facts.
        """
        return maximal_true(self.all_relations(x, y, prune=True))

    # ------------------------------------------------------------------
    # all-pairs evaluation
    # ------------------------------------------------------------------
    def relation_matrix(
        self,
        intervals: "Iterable[NonatomicEvent]",
        spec: SpecLike,
        mask_diagonal: bool = True,
    ):
        """``M[i, j] = spec(intervals[i], intervals[j])`` for all pairs.

        Delegates to the vectorised kernel of
        :mod:`repro.core.pairwise` (NumPy broadcasting over stacked cut
        timestamps, drawn from the shared cut cache) — the fast path
        for pairwise sweeps such as the mutual-exclusion verifier.
        Engine choice does not apply here; the kernel is its own
        (equivalent) evaluation strategy.
        """
        if isinstance(spec, str):
            spec = parse_spec(spec)
        mats = self.context.matrices(list(intervals))
        if isinstance(spec, Relation):
            return mats.relation_matrix(spec, mask_diagonal=mask_diagonal)
        return mats.spec_matrix(
            spec,
            proxy_definition=self.proxy_definition,
            mask_diagonal=mask_diagonal,
        )
