"""High-level facade for evaluating synchronization relations.

:class:`SynchronizationAnalyzer` answers the paper's Problem 4 for a
recorded execution:

(i)  *does a specific relation r(X, Y) hold?* — :meth:`holds`;
(ii) *which relations hold?* — :meth:`all_relations` /
     :meth:`base_relations` / :meth:`strongest`.

The engine is selectable (``"naive"`` / ``"polynomial"`` / ``"linear"``)
so applications, tests and benchmarks exercise the same API while
comparing the three evaluation strategies.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from ..events.event import EventId
from ..events.poset import Execution
from ..nonatomic.event import NonatomicEvent
from ..nonatomic.proxies import ProxyDefinition
from .context import AnalysisContext
from .counting import ComparisonCounter
from .family import N_SUBTESTS, verdict_matrix
from .versioning import versioned_state
from .hierarchy import evaluate_all_pruned, maximal_true
from .linear import LinearEvaluator
from .naive import NaiveEvaluator
from .polynomial import PolynomialEvaluator
from .relations import (
    BASE_RELATIONS,
    FAMILY32,
    SUBTEST_COLUMNS,
    SUBTEST_KEYS,
    Relation,
    RelationSpec,
    SubtestKind,
    parse_spec,
    subtest_key,
)

__all__ = ["SynchronizationAnalyzer", "SharedVerdictCache", "ENGINES"]

_N_CUT_PAIR = sum(
    1 for k in SUBTEST_KEYS if k[0] is SubtestKind.EXISTS_CUT
)

#: A cached verdict row: 24 booleans indexed by
#: :data:`~repro.core.relations.SUBTEST_COLUMNS`.
VerdictRow = tuple[bool, ...]

#: spec → verdict-row column, precomputed for the whole query surface so
#: family readers are pure tuple indexing (zero canonicalisation work).
_FAMILY_COLS: tuple[tuple[RelationSpec, int], ...] = tuple(
    (spec, SUBTEST_COLUMNS[subtest_key(spec)]) for spec in FAMILY32
)
_BASE_COLS: tuple[tuple[Relation, int], ...] = tuple(
    (rel, SUBTEST_COLUMNS[subtest_key(rel)]) for rel in BASE_RELATIONS
)

#: verdict row → maximal true specs.  ``maximal_true`` is a pure
#: function of the 24-bool row (and costs ~0.2 ms of hierarchy walking),
#: so :meth:`SynchronizationAnalyzer.strongest` memoizes it globally —
#: real executions exhibit few distinct rows.  Bounded; reset on
#: overflow.
_STRONGEST_MEMO: dict[VerdictRow, tuple[RelationSpec, ...]] = {}
_STRONGEST_MEMO_LIMIT = 4096


def _strongest_of_row(row: VerdictRow) -> tuple[RelationSpec, ...]:
    cached = _STRONGEST_MEMO.get(row)
    if cached is None:
        if len(_STRONGEST_MEMO) >= _STRONGEST_MEMO_LIMIT:
            _STRONGEST_MEMO.clear()
        cached = _STRONGEST_MEMO[row] = maximal_true(
            {spec: row[col] for spec, col in _FAMILY_COLS}
        )
    return cached

SpecLike = str | Relation | RelationSpec

#: One batch query: ``(spec, X, Y)``.
Query = tuple[SpecLike, NonatomicEvent, NonatomicEvent]

#: Engine registry: name -> evaluator class.
ENGINES = {
    "naive": NaiveEvaluator,
    "polynomial": PolynomialEvaluator,
    "linear": LinearEvaluator,
}


@versioned_state(
    version="_version",
    caches=("_verdicts", "_operands"),
    guards=("invalidate", "_fresh"),
)
class SharedVerdictCache:
    """Memoized ``≪``-subtest verdict rows shared across family queries.

    Theorem 19/20 factor every Table-1 condition into one vector subtest
    (:func:`~repro.core.relations.subtest_key`); across the 40 evaluable
    specs (8 base + 32 family) only 24 subtests are distinct per ordered
    pair — 12 genuine cut-pair ``≪`` evaluations plus 12 extremal-row
    sweeps.  This cache stores one 24-bool *verdict row* per ordered
    pair ``(X, Y)`` (columns fixed by
    :data:`~repro.core.relations.SUBTEST_COLUMNS`), so
    :meth:`SynchronizationAnalyzer.all_relations`,
    :meth:`~SynchronizationAnalyzer.base_relations` and
    :meth:`~SynchronizationAnalyzer.strongest` read the whole family
    from one tuple instead of paying per-spec dispatch.

    Rows are produced by the batched kernel
    (:func:`~repro.core.family.verdict_matrix`): :meth:`fill_pairs`
    stacks the missing pairs' operand tensors — drawn from the context's
    shared :class:`~repro.core.context.CutCache` in **one** batched
    :meth:`~repro.core.context.CutCache.family_operands` gather — and
    scatters the resulting ``(pairs, 24)`` verdict matrix into the memo
    in one pass, with zero per-pair Python dispatch.  Entries are keyed
    to the execution :attr:`~repro.events.poset.Execution.version`;
    growth drops every verdict, so stale future-side subtests can never
    be served.

    Attributes
    ----------
    evals:
        Subtest evaluations actually performed (24 per filled pair).
    cut_pair_evals:
        The subset of :attr:`evals` of kind
        :attr:`~repro.core.relations.SubtestKind.EXISTS_CUT` — the
        cut-pair ``≪`` evaluations proper (≤ 12 per ordered pair, well
        under the 16 ordered Table-2 cut pairs).
    hits:
        Verdict-row reads served from the cache (one per family query
        on an already-filled pair, however many specs that query names).
    fills:
        Batched kernel invocations (each fill covers every missing pair
        of one query batch).
    """

    __slots__ = ("context", "proxy_definition", "_version", "_verdicts",
                 "_operands", "evals", "cut_pair_evals", "hits", "fills")

    def __init__(
        self,
        context: "Execution | AnalysisContext",
        proxy_definition: ProxyDefinition = ProxyDefinition.PER_NODE,
    ) -> None:
        self.context = AnalysisContext.of(context)
        self.proxy_definition = proxy_definition
        self._version = self.context.execution.version
        self._verdicts: dict[
            tuple[frozenset[EventId], frozenset[EventId]], VerdictRow
        ] = {}
        self._operands: dict[frozenset[EventId], np.ndarray] = {}
        self.evals = 0
        self.cut_pair_evals = 0
        self.hits = 0
        self.fills = 0

    def invalidate(self) -> None:
        """Drop every verdict and operand row; re-arm on current version."""
        self._verdicts.clear()
        self._operands.clear()
        self._version = self.context.execution.version

    def _fresh(self) -> None:
        if self.context.execution.version != self._version:
            self.invalidate()

    @property
    def pairs_cached(self) -> int:
        """Ordered pairs with a memoized verdict row."""
        self._fresh()
        return len(self._verdicts)

    def fill_pairs(
        self, pairs: Sequence[tuple[NonatomicEvent, NonatomicEvent]]
    ) -> None:
        """Batch-fill the verdict rows of every not-yet-cached pair.

        One pass end to end: missing pairs are deduplicated, their cold
        intervals' ``(12, P)`` operand tensors are gathered by **one**
        batched :meth:`~repro.core.context.CutCache.family_operands`
        cut fill, the stacked tensor is pushed through
        :func:`~repro.core.family.verdict_matrix` once, and the
        ``(pairs, 24)`` result is scattered into the memo.  Already-
        cached pairs are skipped without touching the counters.
        """
        self._fresh()
        verdicts = self._verdicts
        todo: dict[
            tuple[frozenset[EventId], frozenset[EventId]],
            tuple[NonatomicEvent, NonatomicEvent],
        ] = {}
        for x, y in pairs:
            pk = (x.ids, y.ids)
            if pk not in verdicts and pk not in todo:
                todo[pk] = (x, y)
        if not todo:
            return
        operands = self._operands
        row_of: dict[frozenset[EventId], int] = {}
        cold: list[NonatomicEvent] = []
        for x, y in todo.values():
            for z in (x, y):
                key = z.ids
                if key not in row_of:
                    row_of[key] = len(row_of)
                    if key not in operands:
                        cold.append(z)
        if cold:
            tensor = self.context.cut_cache.family_operands(
                cold, self.proxy_definition
            )
            for z, rec in zip(cold, tensor, strict=True):
                operands[z.ids] = rec
        ops = np.stack([operands[key] for key in row_of])
        xs = np.fromiter(
            (row_of[kx] for kx, _ky in todo), np.intp, count=len(todo)
        )
        ys = np.fromiter(
            (row_of[ky] for _kx, ky in todo), np.intp, count=len(todo)
        )
        matrix = verdict_matrix(ops, xs, ys)
        for pk, row in zip(todo, matrix, strict=True):
            verdicts[pk] = tuple(row.tolist())
        self.fills += 1
        self.evals += N_SUBTESTS * len(todo)
        self.cut_pair_evals += _N_CUT_PAIR * len(todo)

    def verdict_row(
        self, x: NonatomicEvent, y: NonatomicEvent
    ) -> VerdictRow:
        """The 24-subtest verdict row of ``(x, y)``, filling on demand.

        A read served from the memo counts one :attr:`hits`; a missing
        pair pays a single-pair :meth:`fill_pairs` (batch callers should
        pre-fill, making every subsequent read a hit).
        """
        self._fresh()
        pk = (x.ids, y.ids)
        row = self._verdicts.get(pk)
        if row is None:
            self.fill_pairs(((x, y),))
            return self._verdicts[pk]
        self.hits += 1
        return row

    def holds(
        self,
        spec: "Relation | RelationSpec",
        x: NonatomicEvent,
        y: NonatomicEvent,
    ) -> bool:
        """Verdict of ``spec`` on ``(x, y)`` through the subtest memo.

        The first query on a pair pays the batched 24-subtest fill;
        every subsequent query on that pair — whatever the spec — is a
        tuple read.
        """
        return self.verdict_row(x, y)[SUBTEST_COLUMNS[subtest_key(spec)]]


class SynchronizationAnalyzer:
    """Evaluate synchronization conditions over one execution.

    Parameters
    ----------
    execution:
        The analysed execution, or an
        :class:`~repro.core.context.AnalysisContext`.  A bare execution
        resolves to its shared context, so every analyzer (and engine)
        over the same execution amortizes one cut cache.
    engine:
        ``"linear"`` (default, the paper's algorithm), ``"polynomial"``
        (prior-work baseline) or ``"naive"`` (definition-level).
    proxy_definition:
        Proxy definition for 32-family specs (Def. 2 per-node default).
    counted:
        If True, attach a :class:`ComparisonCounter` (exposed as
        :attr:`counter`) recording every integer comparison.
    check_disjoint:
        If True (default), :meth:`holds` raises when X and Y share
        atomic events — the precondition under which the linear
        conditions are exact.  Disable to explore the boundary
        behaviour the paper glosses (see DESIGN.md §2).
    jobs:
        Worker process count for :meth:`batch_holds`.  The default
        ``1`` keeps everything in-process (the serial planner); with
        ``jobs > 1`` batches of at least ``parallel_threshold`` queries
        are sharded across a process pool over shared-memory clock
        matrices (:class:`~repro.core.parallel.ParallelBatchExecutor`).
    parallel_threshold:
        Batch size below which :meth:`batch_holds` stays on the serial
        planner even when ``jobs > 1`` (pool dispatch overhead
        dominates small batches).

    Examples
    --------
    >>> from repro import TraceBuilder, SynchronizationAnalyzer
    >>> b = TraceBuilder(2)
    >>> a1 = b.internal(0); m = b.send(0); r = b.recv(1, m); y1 = b.internal(1)
    >>> ex = b.execute()
    >>> an = SynchronizationAnalyzer(ex)
    >>> X = an.interval([a1], name="X"); Y = an.interval([y1], name="Y")
    >>> an.holds("R1", X, Y)
    True
    """

    def __init__(
        self,
        execution: "Execution | AnalysisContext",
        engine: str = "linear",
        proxy_definition: ProxyDefinition = ProxyDefinition.PER_NODE,
        counted: bool = False,
        check_disjoint: bool = True,
        jobs: int = 1,
        parallel_threshold: int = 1024,
        **engine_kwargs: object,
    ) -> None:
        if engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; choose from {sorted(ENGINES)}"
            )
        self.context = AnalysisContext.of(execution)
        self.execution = self.context.execution
        self.engine_name = engine
        self.proxy_definition = proxy_definition
        self.counter = ComparisonCounter() if counted else None
        self.check_disjoint = check_disjoint
        self.jobs = int(jobs) if jobs else 1
        self.parallel_threshold = int(parallel_threshold)
        self._parallel = None
        self._engine = ENGINES[engine](
            self.context,
            counter=self.counter,
            proxy_definition=proxy_definition,
            **engine_kwargs,
        )
        # Whole-family queries route through the shared ≪-subtest verdict
        # cache (Theorem 19/20 factoring) when that is behaviour-neutral:
        # the linear engine's verdicts match the subtest forms exactly,
        # PER_NODE proxies satisfy the operand coincidences, and a
        # counted analyzer must keep its per-spec comparison accounting.
        self._verdict_cache = (
            self.context.verdict_cache(proxy_definition)
            if engine == "linear"
            and proxy_definition is ProxyDefinition.PER_NODE
            and not counted
            and not engine_kwargs
            else None
        )

    def close(self) -> None:
        """Release the parallel executor's pool and shared memory, if
        one was ever spun up.  Safe to call repeatedly; analyzers with
        ``jobs=1`` hold no resources."""
        if self._parallel is not None:
            self._parallel.close()
            self._parallel = None

    # ------------------------------------------------------------------
    # conveniences
    # ------------------------------------------------------------------
    def interval(
        self, ids: Iterable[EventId], name: str | None = None
    ) -> NonatomicEvent:
        """Create a nonatomic event over this execution."""
        return NonatomicEvent(self.execution, ids, name=name)

    @property
    def comparisons(self) -> int:
        """Total integer comparisons recorded (0 if not ``counted``)."""
        return self.counter.total if self.counter is not None else 0

    @property
    def verdict_cache(self) -> "SharedVerdictCache | None":
        """The shared ``≪``-subtest verdict cache backing the family
        queries, or ``None`` when this analyzer's configuration (engine,
        proxy definition, counting, ablations) bypasses it."""
        return self._verdict_cache

    def _check_pair(self, x: NonatomicEvent, y: NonatomicEvent) -> None:
        if self.check_disjoint and not x.is_disjoint(y):
            raise ValueError(
                "X and Y share atomic events; the evaluation conditions are "
                "exact only for disjoint intervals (pass check_disjoint=False "
                "to evaluate anyway)"
            )

    # ------------------------------------------------------------------
    # Problem 4 (i): one relation
    # ------------------------------------------------------------------
    def holds(self, spec: SpecLike, x: NonatomicEvent, y: NonatomicEvent) -> bool:
        """Does relation ``spec`` hold between ``x`` and ``y``?

        ``spec`` may be a :class:`Relation` (base relation applied to
        the full intervals), a :class:`RelationSpec` (32-family member
        applied to proxies), or a string such as ``"R2'"`` / ``"R2'(U,L)"``.
        """
        self._check_pair(x, y)
        if isinstance(spec, str):
            spec = parse_spec(spec)
        return self._engine_holds(spec, x, y)

    # ------------------------------------------------------------------
    # batched queries
    # ------------------------------------------------------------------
    def batch_holds(
        self,
        queries: "Sequence[Query] | Iterable[Query]",
        min_group: int = 4,
    ) -> list[bool]:
        """Answer many ``(spec, X, Y)`` queries, batched.

        The planner groups queries by relation spec; every group with at
        least ``min_group`` queries is routed through the vectorised
        all-pairs kernel (:class:`~repro.core.pairwise.IntervalSetMatrices`):
        the group's distinct intervals are stacked into one ``(k, P)``
        cut-timestamp matrix (drawn from the shared cut cache) and the
        whole group is answered by one NumPy broadcast instead of
        per-query Python calls.  Smaller groups fall back to the scalar
        engine path.  Results align with the input order.

        Notes
        -----
        * Verdicts are identical to :meth:`holds` on every query (the
          vectorised conditions are the sound full-``|P|``-scan forms).
        * The batch path is its own evaluation strategy: engine choice
          does not apply to it, and it does not tick the
          :class:`ComparisonCounter` (it is vectorised; count-exact
          experiments should query the scalar path).
        * ``check_disjoint`` applies per query, exactly as in
          :meth:`holds`.
        * With ``jobs > 1`` (constructor), batches of at least
          ``parallel_threshold`` queries are dispatched to the
          :class:`~repro.core.parallel.ParallelBatchExecutor` —
          identical verdicts, sharded across worker processes over
          shared-memory clock matrices.
        """
        qs = list(queries)
        if self.jobs > 1 and len(qs) >= self.parallel_threshold:
            if self._parallel is None:
                from .parallel import ParallelBatchExecutor

                self._parallel = ParallelBatchExecutor(
                    self.context,
                    jobs=self.jobs,
                    min_parallel=self.parallel_threshold,
                )
            return self._parallel.execute(
                qs,
                proxy_definition=self.proxy_definition,
                check_disjoint=self.check_disjoint,
            )
        out: list[bool] = [False] * len(qs)
        check = self.check_disjoint

        # single planning pass: validate, parse, group by spec (hashing
        # each *distinct spec object* once — RelationSpec hashing is not
        # free at planner scale) and assign interval rows as we go.
        # group record: [query indices, x rows, y rows, row_of, intervals]
        groups: dict[Relation | RelationSpec, list] = {}
        group_of_obj: dict[int, list] = {}
        for i, (spec, x, y) in enumerate(qs):
            if check and not x.ids.isdisjoint(y.ids):
                self._check_pair(x, y)  # raises with the full message
            if isinstance(spec, str):
                spec = parse_spec(spec)
                qs[i] = (spec, x, y)
            rec = group_of_obj.get(id(spec))
            if rec is None:
                rec = groups.setdefault(spec, [[], [], [], {}, []])
                group_of_obj[id(spec)] = rec
            idxs, xs, ys, row_of, intervals = rec
            idxs.append(i)
            kx = x.ids
            row = row_of.get(kx)
            if row is None:
                row = row_of[kx] = len(intervals)
                intervals.append(x)
            xs.append(row)
            ky = y.ids
            row = row_of.get(ky)
            if row is None:
                row = row_of[ky] = len(intervals)
                intervals.append(y)
            ys.append(row)

        for spec, (idxs, xs, ys, _row_of, intervals) in groups.items():
            if len(idxs) < max(min_group, 2):
                for i in idxs:
                    _s, x, y = qs[i]
                    out[i] = self._engine_holds(spec, x, y)
                continue
            # one (k, P) stack over the group's distinct intervals
            mats = self.context.matrices(intervals)
            if isinstance(spec, Relation):
                matrix = mats.relation_matrix(spec, mask_diagonal=False)
            else:
                matrix = mats.spec_matrix(
                    spec,
                    proxy_definition=self.proxy_definition,
                    mask_diagonal=False,
                )
            # one fancy-indexed gather instead of per-query scalar reads
            verdicts = matrix[np.asarray(xs, dtype=np.intp),
                              np.asarray(ys, dtype=np.intp)]
            for i, v in zip(idxs, verdicts.tolist(), strict=True):
                out[i] = v
        return out

    def _engine_holds(
        self,
        spec: "Relation | RelationSpec",
        x: NonatomicEvent,
        y: NonatomicEvent,
    ) -> bool:
        """Scalar-path dispatch for an already-parsed spec."""
        if isinstance(spec, Relation):
            return self._engine.evaluate(spec, x, y)
        return self._engine.evaluate_spec(spec, x, y)

    # ------------------------------------------------------------------
    # Problem 4 (ii): all relations
    # ------------------------------------------------------------------
    def _family_holds(
        self,
        spec: "Relation | RelationSpec",
        x: NonatomicEvent,
        y: NonatomicEvent,
    ) -> bool:
        """Family-query dispatch: shared ≪-subtest cache when available
        (Theorem 19/20 factoring — at most 24 distinct subtest verdicts
        per ordered pair across all 40 specs), scalar engine otherwise."""
        if self._verdict_cache is not None:
            return self._verdict_cache.holds(spec, x, y)
        return self._engine_holds(spec, x, y)

    def base_relations(
        self, x: NonatomicEvent, y: NonatomicEvent
    ) -> dict[Relation, bool]:
        """Evaluate all 8 base relations ``R(X, Y)``."""
        self._check_pair(x, y)
        vc = self._verdict_cache
        if vc is None:
            return {r: self._engine_holds(r, x, y) for r in BASE_RELATIONS}
        row = vc.verdict_row(x, y)
        return {r: row[c] for r, c in _BASE_COLS}

    def all_relations(
        self,
        x: NonatomicEvent,
        y: NonatomicEvent,
        prune: bool = False,
    ) -> dict[RelationSpec, bool]:
        """Evaluate all 32 family relations ``r(X, Y)``.

        On the default configuration (linear engine, per-node proxies,
        uncounted) the whole family is read from one 24-bool verdict
        row of the shared ``≪``-subtest cache, produced by the batched
        kernel (:func:`~repro.core.family.verdict_matrix`) — zero
        per-spec Python dispatch.  ``prune`` is then irrelevant (the
        row already answers everything) and ignored.

        On bypass configurations (non-linear engines, global proxies,
        counted analyzers, engine ablations) the per-spec scalar path
        runs instead; there ``prune=True`` infers results implied by
        already-evaluated ones through the hierarchy (ablation A-3).
        The answer is identical on every path.
        """
        self._check_pair(x, y)
        vc = self._verdict_cache
        if vc is None:
            if prune:
                results, _ = evaluate_all_pruned(
                    lambda spec: self._engine_holds(spec, x, y), FAMILY32
                )
                return results
            return {
                spec: self._engine_holds(spec, x, y) for spec in FAMILY32
            }
        row = vc.verdict_row(x, y)
        return {spec: row[c] for spec, c in _FAMILY_COLS}

    def strongest(
        self, x: NonatomicEvent, y: NonatomicEvent
    ) -> tuple[RelationSpec, ...]:
        """The strongest 32-family relations holding between x and y.

        These are the maximal true relations under the implication
        hierarchy — the most informative synchronization facts.  On the
        cached configuration the hierarchy walk itself is memoized per
        distinct verdict row, so repeated sweeps cost one tuple lookup.
        """
        vc = self._verdict_cache
        if vc is not None:
            self._check_pair(x, y)
            return _strongest_of_row(vc.verdict_row(x, y))
        return maximal_true(self.all_relations(x, y, prune=True))

    # ------------------------------------------------------------------
    # Problem 4 (ii), batched: many pairs in one kernel pass
    # ------------------------------------------------------------------
    def _fill_family(
        self, pairs: Sequence[tuple[NonatomicEvent, NonatomicEvent]]
    ) -> "SharedVerdictCache | None":
        """Validate ``pairs`` and batch-fill their verdict rows (cached
        configurations); returns the cache, or ``None`` on bypass."""
        for x, y in pairs:
            self._check_pair(x, y)
        vc = self._verdict_cache
        if vc is not None:
            vc.fill_pairs(pairs)
        return vc

    def all_relations_batch(
        self, pairs: Iterable[tuple[NonatomicEvent, NonatomicEvent]]
    ) -> list[dict[RelationSpec, bool]]:
        """:meth:`all_relations` for many ordered pairs at once.

        On the cached configuration every missing pair is answered by
        **one** batched operand gather + one
        :func:`~repro.core.family.verdict_matrix` pass (all 24 subtests
        × all pairs), then scattered; results align with the input
        order and are identical to per-pair :meth:`all_relations`.
        Bypass configurations fall back to the scalar loop.
        """
        seq = list(pairs)
        vc = self._fill_family(seq)
        if vc is None:
            return [
                {spec: self._engine_holds(spec, x, y) for spec in FAMILY32}
                for x, y in seq
            ]
        return [
            {spec: row[c] for spec, c in _FAMILY_COLS}
            for row in (vc.verdict_row(x, y) for x, y in seq)
        ]

    def base_relations_batch(
        self, pairs: Iterable[tuple[NonatomicEvent, NonatomicEvent]]
    ) -> list[dict[Relation, bool]]:
        """:meth:`base_relations` for many ordered pairs at once
        (one kernel pass on the cached configuration)."""
        seq = list(pairs)
        vc = self._fill_family(seq)
        if vc is None:
            return [
                {r: self._engine_holds(r, x, y) for r in BASE_RELATIONS}
                for x, y in seq
            ]
        return [
            {r: row[c] for r, c in _BASE_COLS}
            for row in (vc.verdict_row(x, y) for x, y in seq)
        ]

    def strongest_batch(
        self, pairs: Iterable[tuple[NonatomicEvent, NonatomicEvent]]
    ) -> list[tuple[RelationSpec, ...]]:
        """:meth:`strongest` for many ordered pairs at once
        (one kernel pass + memoized hierarchy walks on the cached
        configuration)."""
        seq = list(pairs)
        vc = self._fill_family(seq)
        if vc is None:
            return [self.strongest(x, y) for x, y in seq]
        return [_strongest_of_row(vc.verdict_row(x, y)) for x, y in seq]

    # ------------------------------------------------------------------
    # all-pairs evaluation
    # ------------------------------------------------------------------
    def relation_matrix(
        self,
        intervals: "Iterable[NonatomicEvent]",
        spec: SpecLike,
        mask_diagonal: bool = True,
    ) -> np.ndarray:
        """``M[i, j] = spec(intervals[i], intervals[j])`` for all pairs.

        Delegates to the vectorised kernel of
        :mod:`repro.core.pairwise` (NumPy broadcasting over stacked cut
        timestamps, drawn from the shared cut cache) — the fast path
        for pairwise sweeps such as the mutual-exclusion verifier.
        Engine choice does not apply here; the kernel is its own
        (equivalent) evaluation strategy.
        """
        if isinstance(spec, str):
            spec = parse_spec(spec)
        mats = self.context.matrices(list(intervals))
        if isinstance(spec, Relation):
            return mats.relation_matrix(spec, mask_diagonal=mask_diagonal)
        return mats.spec_matrix(
            spec,
            proxy_definition=self.proxy_definition,
            mask_diagonal=mask_diagonal,
        )
