"""Explainable relation evaluation.

``holds()`` answers *whether* a relation holds; :func:`explain` answers
*why*: which cut pair was tested, which nodes were scanned, the
compared timestamp components, and — for a positive existential or a
negative universal — the witness node that decided it.  Real-time
engineers debugging a failed synchronization condition need exactly
this ("the actuation on node 5 is not covered by the sample round"),
and the examples use it for narrative output.
"""

from __future__ import annotations

from dataclasses import dataclass


from ..nonatomic.event import NonatomicEvent
from ..nonatomic.proxies import ProxyDefinition, proxy_of
from collections.abc import Iterable

from .cuts import Cut, cut_C1, cut_C2, cut_C3, cut_C4
from .relations import Relation, RelationSpec, parse_spec

__all__ = ["Comparison", "Explanation", "explain"]


@dataclass(frozen=True, slots=True)
class Comparison:
    """One integer comparison of the linear evaluation."""

    node: int
    past_component: int  # T(↓Y)[node] or firstY index
    future_component: int  # T(X↑)[node] or lastX index
    satisfied: bool  # past >= future (the ≪̸ witness direction)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        op = ">=" if self.satisfied else "<"
        return (
            f"node {self.node}: {self.past_component} {op} "
            f"{self.future_component}"
        )


@dataclass(frozen=True, slots=True)
class Explanation:
    """Full account of one linear-engine evaluation."""

    relation: Relation
    holds: bool
    mode: str  # "forall-x" | "forall-y" | "exists"
    cut_pair: tuple[str, str]  # names of the cuts compared
    scanned_nodes: tuple[int, ...]
    comparisons: tuple[Comparison, ...]
    witness_node: int | None  # decisive node (if short-circuited)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        verdict = "holds" if self.holds else "fails"
        lines = [
            f"{self.relation.display}(X, Y) {verdict} "
            f"[{self.mode}; {self.cut_pair[0]} vs {self.cut_pair[1]}; "
            f"scanned nodes {list(self.scanned_nodes)}]"
        ]
        lines.extend(f"  {c}" for c in self.comparisons)
        if self.witness_node is not None:
            lines.append(f"  decided at node {self.witness_node}")
        return "\n".join(lines)


def _forall_x(
    relation: Relation, past_cut_name: str, past: Cut, x: NonatomicEvent
) -> Explanation:
    comparisons: list[Comparison] = []
    witness: int | None = None
    holds = True
    v = past.vector
    for i in x.node_set:
        cmp_ = Comparison(
            node=i,
            past_component=int(v[i]),
            future_component=x.last_at(i),
            satisfied=bool(v[i] >= x.last_at(i)),
        )
        comparisons.append(cmp_)
        if not cmp_.satisfied:
            holds = False
            witness = i
            break
    return Explanation(
        relation=relation,
        holds=holds,
        mode="forall-x",
        cut_pair=(past_cut_name, "x↑ (per-node last)"),
        scanned_nodes=x.node_set,
        comparisons=tuple(comparisons),
        witness_node=witness,
    )


def _forall_y(
    relation: Relation, fut_cut_name: str, fut: Cut, y: NonatomicEvent
) -> Explanation:
    comparisons: list[Comparison] = []
    witness: int | None = None
    holds = True
    w = fut.vector
    for i in y.node_set:
        cmp_ = Comparison(
            node=i,
            past_component=y.first_at(i),
            future_component=int(w[i]),
            satisfied=bool(y.first_at(i) >= w[i]),
        )
        comparisons.append(cmp_)
        if not cmp_.satisfied:
            holds = False
            witness = i
            break
    return Explanation(
        relation=relation,
        holds=holds,
        mode="forall-y",
        cut_pair=("↓y (per-node first)", fut_cut_name),
        scanned_nodes=y.node_set,
        comparisons=tuple(comparisons),
        witness_node=witness,
    )


def _exists(
    relation: Relation,
    past_name: str,
    past: Cut,
    fut_name: str,
    fut: Cut,
    nodes: Iterable[int],
) -> Explanation:
    comparisons: list[Comparison] = []
    witness: int | None = None
    holds = False
    v, w = past.vector, fut.vector
    for i in nodes:
        cmp_ = Comparison(
            node=i,
            past_component=int(v[i]),
            future_component=int(w[i]),
            satisfied=bool(v[i] >= w[i]),
        )
        comparisons.append(cmp_)
        if cmp_.satisfied:
            holds = True
            witness = i
            break
    return Explanation(
        relation=relation,
        holds=holds,
        mode="exists",
        cut_pair=(past_name, fut_name),
        scanned_nodes=tuple(nodes),
        comparisons=tuple(comparisons),
        witness_node=witness,
    )


def explain(
    spec: str | Relation | RelationSpec,
    x: NonatomicEvent,
    y: NonatomicEvent,
    proxy_definition: ProxyDefinition = ProxyDefinition.PER_NODE,
) -> Explanation:
    """Evaluate ``spec(x, y)`` with the linear conditions, keeping the
    evidence.

    The verdict always equals ``SynchronizationAnalyzer.holds`` (the
    suite asserts it); the extras are the scanned nodes, every
    comparison made, and the decisive witness node when the evaluation
    short-circuited.
    """
    if isinstance(spec, str):
        spec = parse_spec(spec)
    if isinstance(spec, RelationSpec):
        px = proxy_of(x, spec.proxy_x, proxy_definition)
        py = proxy_of(y, spec.proxy_y, proxy_definition)
        inner = explain(spec.relation, px, py, proxy_definition)
        return inner
    relation = spec
    if relation in (Relation.R1, Relation.R1P):
        if x.width <= y.width:
            return _forall_x(relation, "∩⇓Y", cut_C1(y), x)
        return _forall_y(relation, "∪⇑X", cut_C4(x), y)
    if relation is Relation.R2:
        return _forall_x(relation, "∪⇓Y", cut_C2(y), x)
    if relation is Relation.R3P:
        return _forall_y(relation, "∩⇑X", cut_C3(x), y)
    if relation is Relation.R2P:
        return _exists(relation, "∪⇓Y", cut_C2(y), "∪⇑X", cut_C4(x),
                       y.node_set)
    if relation is Relation.R3:
        return _exists(relation, "∩⇓Y", cut_C1(y), "∩⇑X", cut_C3(x),
                       x.node_set)
    if relation in (Relation.R4, Relation.R4P):
        nodes = x.node_set if x.width <= y.width else y.node_set
        return _exists(relation, "∪⇓Y", cut_C2(y), "∩⇑X", cut_C3(x), nodes)
    raise ValueError(f"unknown relation: {relation!r}")  # pragma: no cover
