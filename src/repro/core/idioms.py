"""Named synchronization idioms over the relation family.

The 32 relations are precise but terse; applications usually reach for
a handful of recurring *idioms*.  This module names them, documents
the exact relation each maps to, and exposes them as predicates over an
analyzer — a vocabulary layer, not new semantics (every idiom is a
single `holds()` call, and the mapping is part of each docstring).

========================  =========================================
idiom                     relation
========================  =========================================
``wholly_before``         ``R1(X, Y)``
``ends_before_starts``    ``R1(U,L)(X, Y)`` — interval separation
``started_by_all_of``     ``R1(U,L)(Y, X)`` reversed
``influences``            ``R4(X, Y)`` — some causal path
``independent``           ``not R4(X, Y) and not R4(Y, X)``
``covered_by``            ``R2(X, Y)`` — every part of X reaches Y
``triggered_by_some``     ``R3'(X, Y)`` — every part of Y has a cause in X
``has_common_effect``     ``R2'(X, Y)`` — one event of Y sees all of X
``has_common_cause``      ``R3(X, Y)`` — one event of X reaches all of Y
``serialised``            ``ends_before_starts`` either way
========================  =========================================
"""

from __future__ import annotations

from ..core.evaluator import SynchronizationAnalyzer
from ..nonatomic.event import NonatomicEvent

__all__ = [
    "wholly_before",
    "ends_before_starts",
    "influences",
    "independent",
    "covered_by",
    "triggered_by_some",
    "has_common_effect",
    "has_common_cause",
    "serialised",
]


def wholly_before(
    an: SynchronizationAnalyzer, x: NonatomicEvent, y: NonatomicEvent
) -> bool:
    """Every component of X causally precedes every component of Y.

    Exactly ``R1(X, Y)`` — the strongest separation; requires a causal
    path from each of X's per-node latest events to each of Y's
    per-node earliest ones.
    """
    return an.holds("R1", x, y)


def ends_before_starts(
    an: SynchronizationAnalyzer, x: NonatomicEvent, y: NonatomicEvent
) -> bool:
    """X's *end proxy* precedes Y's *begin proxy*: ``R1(U,L)(X, Y)``.

    The natural "the activity finished before the next one began"
    reading for interval separation (identical to ``R1(X, Y)`` for
    whole intervals under Definition 2, exposed separately because
    specifications quote it on proxies).
    """
    return an.holds("R1(U,L)", x, y)


def influences(
    an: SynchronizationAnalyzer, x: NonatomicEvent, y: NonatomicEvent
) -> bool:
    """Some component of X causally reaches some component of Y:
    ``R4(X, Y)``."""
    return an.holds("R4", x, y)


def independent(
    an: SynchronizationAnalyzer, x: NonatomicEvent, y: NonatomicEvent
) -> bool:
    """No causal coupling in either direction:
    ``not R4(X, Y) and not R4(Y, X)``."""
    return not an.holds("R4", x, y) and not an.holds("R4", y, x)


def covered_by(
    an: SynchronizationAnalyzer, x: NonatomicEvent, y: NonatomicEvent
) -> bool:
    """Every component of X is causally followed by some component of
    Y: ``R2(X, Y)`` — nothing X did goes unobserved by Y."""
    return an.holds("R2", x, y)


def triggered_by_some(
    an: SynchronizationAnalyzer, x: NonatomicEvent, y: NonatomicEvent
) -> bool:
    """Every component of Y causally follows some component of X:
    ``R3'(X, Y)`` — Y never acts spontaneously w.r.t. X."""
    return an.holds("R3'", x, y)


def has_common_effect(
    an: SynchronizationAnalyzer, x: NonatomicEvent, y: NonatomicEvent
) -> bool:
    """Some single component of Y causally follows all of X:
    ``R2'(X, Y)`` — a rendezvous point that has seen everything X did."""
    return an.holds("R2'", x, y)


def has_common_cause(
    an: SynchronizationAnalyzer, x: NonatomicEvent, y: NonatomicEvent
) -> bool:
    """Some single component of X causally precedes all of Y:
    ``R3(X, Y)`` — one trigger explains all of Y."""
    return an.holds("R3", x, y)


def serialised(
    an: SynchronizationAnalyzer, x: NonatomicEvent, y: NonatomicEvent
) -> bool:
    """The intervals do not causally interleave: one's end proxy wholly
    precedes the other's begin proxy (either order) — the mutual
    exclusion criterion."""
    return ends_before_starts(an, x, y) or ends_before_starts(an, y, x)
