"""The batched family-query kernel: all 24 ≪-subtests, all pairs at once.

Theorem 19/20 reduce every one of the 40 evaluable specs (8 base
relations + the 32-member proxy family) to one of 24 distinct vector
subtests per ordered pair (:data:`~repro.core.relations.SUBTEST_KEYS`).
PR 4 exploited that factoring per pair, but still paid one Python
dispatch per spec per pair — and the op-count win arrived with a
wall-clock *loss* (BENCH_PR4: 0.80x).  This module removes the per-pair
loop entirely:

* :func:`operand_tensor` reshapes one batched
  :class:`~repro.backends.stats.CutStats` fill over the interleaved
  ``(L, U)`` proxies of k intervals into a contiguous ``(k, 12, P)``
  operand tensor — the twelve rows (six stats × two proxies) any subtest
  key can select;
* :func:`verdict_matrix` answers **all 24 subtest columns for Q ordered
  pairs** with three fancy-indexed gathers and three comparison +
  reduction passes, producing the ``(Q, 24)`` boolean verdict matrix
  that :class:`~repro.core.evaluator.SharedVerdictCache` scatters into
  its per-pair memo in one pass;
* :data:`RELATION_ROWS` / :func:`compare_rows` are the single source of
  the per-relation comparison formulas, shared with the all-pairs and
  gather kernels of :mod:`repro.core.pairwise` so the batched, matrix
  and scalar surfaces cannot drift apart.

Layering: this module sits beside :mod:`repro.core.relations` and below
:mod:`repro.core.context` — it sees only stacked arrays, never
executions or caches.
"""

from __future__ import annotations

# repro: hot, dtype-strict

import numpy as np

from ..backends.stats import CutStats
from .relations import (
    SUBTEST_COLUMNS,
    SUBTEST_KEYS,
    Relation,
    SubtestKey,
    SubtestKind,
)

__all__ = [
    "N_OPERANDS",
    "N_SUBTESTS",
    "OPERAND_ORDER",
    "OPERAND_INDEX",
    "RELATION_ROWS",
    "operand_tensor",
    "verdict_matrix",
    "subtest_matrix",
    "compare_rows",
]

#: Stat row names in :class:`~repro.backends.stats.CutStats` order.
_OPERAND_STATS: tuple[str, ...] = ("c1", "c2", "c3", "c4", "first", "last")

#: The twelve operand rows of one interval — ``(stat, proxy_tag)`` in a
#: fixed layout (stat-major, L before U) matching :func:`operand_tensor`.
OPERAND_ORDER: tuple[tuple[str, str], ...] = tuple(
    (stat, tag) for stat in _OPERAND_STATS for tag in ("L", "U")
)

#: ``(stat, tag)`` → row index into the ``(k, 12, P)`` operand tensor.
OPERAND_INDEX: dict[tuple[str, str], int] = {
    op: i for i, op in enumerate(OPERAND_ORDER)
}

N_OPERANDS: int = len(OPERAND_ORDER)
N_SUBTESTS: int = len(SUBTEST_KEYS)

#: Base relation → ``(kind, y_stat, x_stat)`` comparison row — the
#: formula table behind the all-pairs/gather kernels
#: (:mod:`repro.core.pairwise`).  Stat names select attributes of the
#: *full-interval* :class:`~repro.backends.stats.CutStats`; the proxy
#: coincidences of :func:`~repro.core.relations.subtest_key` make these
#: rows identical to the canonical family subtests.
RELATION_ROWS: dict[Relation, tuple[SubtestKind, str, str]] = {
    Relation.R1: (SubtestKind.FORALL_PAST, "c1", "last"),
    Relation.R1P: (SubtestKind.FORALL_PAST, "c1", "last"),
    Relation.R2: (SubtestKind.FORALL_PAST, "c2", "last"),
    Relation.R2P: (SubtestKind.EXISTS_CUT, "c2", "c4"),
    Relation.R3: (SubtestKind.EXISTS_CUT, "c1", "c3"),
    Relation.R3P: (SubtestKind.FORALL_FUTURE, "first", "c3"),
    Relation.R4: (SubtestKind.EXISTS_CUT, "c2", "c3"),
    Relation.R4P: (SubtestKind.EXISTS_CUT, "c2", "c3"),
}


def compare_rows(
    kind: SubtestKind, y: np.ndarray, x: np.ndarray
) -> np.ndarray:
    """The three subtest formulas, reduced over the trailing (node) axis.

    ``y``/``x`` are broadcast-compatible stacks whose last axis is
    ``|P|``; the result drops that axis.  These are the sound
    full-``|P|``-scan forms shared by every vectorized surface:

    * ``FORALL_PAST``:   ``all(y ≥ x)`` — ``x = lastX̂`` is 0 off
      ``N_X̂``, neutral because cut timestamps are nonnegative;
    * ``EXISTS_CUT``:    ``any(y ≥ x)`` — the genuine cut-pair ``≪̸``
      tests (future-cut components are ≥ 1, so a hit implies ``y ≥ 1``);
    * ``FORALL_FUTURE``: ``all((y == 0) | (y ≥ x))`` — ``y = firstŶ``
      with 0 encoding "node not in ``N_Ŷ``", skipped.
    """
    if kind is SubtestKind.EXISTS_CUT:
        return np.any(y >= x, axis=-1)
    if kind is SubtestKind.FORALL_PAST:
        return np.all(y >= x, axis=-1)
    if kind is SubtestKind.FORALL_FUTURE:
        return np.all((y == 0) | (y >= x), axis=-1)
    raise ValueError(f"unknown subtest kind: {kind!r}")  # pragma: no cover


def _column_groups() -> tuple[
    tuple[SubtestKind, np.ndarray, np.ndarray, np.ndarray], ...
]:
    """Per-kind column plans: (kind, columns, y operand rows, x rows).

    Grouping the 24 columns by kind lets :func:`verdict_matrix` answer
    each group with one gather pair + one comparison/reduction pass.
    """
    groups = []
    for kind in SubtestKind:
        sel = [
            (SUBTEST_COLUMNS[key], key)
            for key in SUBTEST_KEYS
            if key[0] is kind
        ]
        cols = np.asarray([c for c, _ in sel], dtype=np.intp)
        y_ops = np.asarray(
            [OPERAND_INDEX[key[1]] for _, key in sel], dtype=np.intp
        )
        x_ops = np.asarray(
            [OPERAND_INDEX[key[2]] for _, key in sel], dtype=np.intp
        )
        for arr in (cols, y_ops, x_ops):
            arr.setflags(write=False)
        groups.append((kind, cols, y_ops, x_ops))
    return tuple(groups)


_GROUPS: tuple[
    tuple[SubtestKind, np.ndarray, np.ndarray, np.ndarray], ...
] = _column_groups()


def operand_tensor(stats: CutStats) -> np.ndarray:
    """Reshape proxy stats into the ``(k, 12, P)`` operand tensor.

    ``stats`` must stack the **interleaved proxies** of k intervals —
    rows ``[L_0, U_0, L_1, U_1, …]`` from one batched cut fill.  Row
    ``out[i, OPERAND_INDEX[stat, tag]]`` is the ``stat`` vector of
    interval ``i``'s ``tag`` proxy; the tensor is contiguous so the
    fancy gathers of :func:`verdict_matrix` touch one block per group.
    """
    two_k, num_nodes = stats.c1.shape
    if two_k % 2:
        raise ValueError("stats must stack interleaved (L, U) proxy rows")
    k = two_k // 2
    out = np.empty((k, N_OPERANDS, num_nodes), dtype=np.int64)
    for stat_i, stat in enumerate(_OPERAND_STATS):
        mat = getattr(stats, stat)
        out[:, 2 * stat_i] = mat[0::2]
        out[:, 2 * stat_i + 1] = mat[1::2]
    out.setflags(write=False)
    return out


def verdict_matrix(
    ops: np.ndarray, xs: np.ndarray, ys: np.ndarray
) -> np.ndarray:
    """All 24 subtest verdicts for Q ordered pairs in one pass.

    ``ops`` is the ``(k, 12, P)`` operand tensor of the distinct
    intervals; ``xs``/``ys`` are length-Q row indices selecting each
    pair's X and Y interval.  Returns the ``(Q, 24)`` boolean verdict
    matrix whose column ``j`` answers
    ``SUBTEST_KEYS[j]`` (:data:`~repro.core.relations.SUBTEST_COLUMNS`).

    Cost: three ``(Q, group, P)`` gather pairs + three comparison/
    reduction passes — zero per-pair Python dispatch, ``O(Q · P)``
    total work for the whole 40-spec query surface.
    """
    xs = np.asarray(xs, dtype=np.intp)
    ys = np.asarray(ys, dtype=np.intp)
    out = np.empty((xs.shape[0], N_SUBTESTS), dtype=np.bool_)
    for kind, cols, y_ops, x_ops in _GROUPS:
        y = ops[ys[:, None], y_ops[None, :]]
        x = ops[xs[:, None], x_ops[None, :]]
        out[:, cols] = compare_rows(kind, y, x)
    return out


def subtest_matrix(ops: np.ndarray, key: SubtestKey) -> np.ndarray:
    """All-pairs ``(k, k)`` matrix for one subtest key.

    ``M[i, j]`` answers the subtest with ``intervals[i]`` as X and
    ``intervals[j]`` as Y — the broadcast form of :func:`verdict_matrix`
    used by :meth:`~repro.core.pairwise.IntervalSetMatrices.spec_matrix`.
    """
    kind, yop, xop = key
    y = ops[:, OPERAND_INDEX[yop]][None, :, :]
    x = ops[:, OPERAND_INDEX[xop]][:, None, :]
    return compare_rows(kind, y, x)
