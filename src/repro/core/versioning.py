"""Declarative registry of version-disciplined cache-bearing classes.

The paper's linear-time guarantees lean on a repo-wide protocol: every
structure memoized against an :class:`~repro.events.poset.Execution`
(cut quadruples, extremal vectors, interval-set stacks, ``≪``-subtest
verdicts, published shared-memory clocks) records the execution
``version`` it was filled against and must be invalidated — or at least
freshness-checked — before it is read or refilled once the execution
has grown.  A single missed version bump or missed freshness check
silently serves stale Table-1 verdicts.

This module makes the protocol *declarative* so it can be enforced
mechanically.  A cache-bearing class announces its contract with
:func:`versioned_state`::

    @versioned_state(
        version="_version",
        caches=("_cuts", "_extremal"),
        guards=("invalidate", "_fresh"),
    )
    class CutCache: ...

and the static checker (``python -m repro lint``, rules REP001 and
REP005 in :mod:`repro.lint`) verifies every method of the class:

* **REP001** — a method that mutates *versioned state* must bump the
  version attribute; a method that rebinds, clears or refills a
  *cache* attribute must bump, call a guard, or compare the version
  in the same method.
* **REP005** — a method that reads a cache attribute must call a guard
  (or compare the version) *before* the first read.

Layers that cannot import :mod:`repro.core` (the events substrate —
``core`` imports ``events``, not the reverse) declare the identical
contract through the :data:`REGISTRY_ATTR` class attribute instead::

    class GrowableClockTable:
        _REPRO_VERSIONED = {
            "version": "_version",
            "state": ("_blocks", "_counts"),
            "caches": ("_snapshot",),
        }

Both spellings are recognised by the checker; the decorator
additionally registers the class in :data:`VERSIONED_CLASSES` for
runtime introspection and validates guard names at decoration time.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Sequence
from typing import TypeVar

__all__ = [
    "REGISTRY_ATTR",
    "SPEC_ATTR",
    "VERSIONED_CLASSES",
    "VersionedStateSpec",
    "spec_of",
    "versioned_state",
]

#: Class attribute carrying the contract in decorator-free layers.
REGISTRY_ATTR = "_REPRO_VERSIONED"

#: Class attribute the decorator stores its parsed spec under.
SPEC_ATTR = "__versioned_state__"

_T = TypeVar("_T")


@dataclass(frozen=True)
class VersionedStateSpec:
    """One class's version-discipline contract.

    Attributes
    ----------
    version:
        Instance attribute holding the version the structures were
        built against.  Mutating ``state`` must reassign it; guards
        re-arm it.
    state:
        Attributes whose mutation *is* a logical version change (the
        underlying data: trace, clock blocks, ...).
    caches:
        Attributes memoizing derived structures.  Writes must be
        freshness-aware; reads must be preceded by a guard call or a
        version comparison.
    guards:
        Method names that re-establish freshness (``invalidate*`` /
        ``_fresh``-style).  Guard methods themselves are exempt from
        the rules, as are ``__init__`` and read-only dunders.
    """

    version: str
    state: tuple[str, ...] = ()
    caches: tuple[str, ...] = ()
    guards: tuple[str, ...] = ("invalidate",)


#: Classes registered through the decorator, in registration order.
VERSIONED_CLASSES: list[type] = []


def spec_of(cls: type) -> "VersionedStateSpec | None":
    """The version-discipline contract of ``cls``, or ``None``.

    Resolves both spellings: the decorator's stored spec and the
    :data:`REGISTRY_ATTR` dict used by layers below :mod:`repro.core`.
    """
    spec = cls.__dict__.get(SPEC_ATTR)
    if isinstance(spec, VersionedStateSpec):
        return spec
    raw = cls.__dict__.get(REGISTRY_ATTR)
    if isinstance(raw, dict):
        return VersionedStateSpec(
            version=raw["version"],
            state=tuple(raw.get("state", ())),
            caches=tuple(raw.get("caches", ())),
            guards=tuple(raw.get("guards", ("invalidate",))),
        )
    return None


def versioned_state(
    *,
    version: str,
    state: Sequence[str] = (),
    caches: Sequence[str] = (),
    guards: Sequence[str] = ("invalidate",),
) -> Callable[[type[_T]], type[_T]]:
    """Declare a class's version-discipline contract (see module doc).

    A runtime no-op apart from bookkeeping: the parsed
    :class:`VersionedStateSpec` is stored on the class (where the
    static checker's dynamic tests and :func:`spec_of` find it) and the
    class is appended to :data:`VERSIONED_CLASSES`.

    Raises
    ------
    ValueError
        If a named guard is not a method of the decorated class, or if
        a declared attribute is absent from the class's ``__slots__``
        (when it defines them) — both are almost certainly typos that
        would silently disable the checker.
    """
    spec = VersionedStateSpec(
        version=version, state=tuple(state), caches=tuple(caches),
        guards=tuple(guards),
    )

    def wrap(cls: type[_T]) -> type[_T]:
        for guard in spec.guards:
            if not callable(getattr(cls, guard, None)):
                raise ValueError(
                    f"{cls.__name__}: guard {guard!r} is not a method"
                )
        slots = cls.__dict__.get("__slots__")
        if slots is not None:
            declared = set(slots)
            for attr in (spec.version, *spec.state, *spec.caches):
                if attr not in declared:
                    raise ValueError(
                        f"{cls.__name__}: declared attribute {attr!r} "
                        f"is not in __slots__"
                    )
        setattr(cls, SPEC_ATTR, spec)
        VERSIONED_CLASSES.append(cls)
        return cls

    return wrap
