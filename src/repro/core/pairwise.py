"""Vectorised all-pairs relation evaluation.

Applications like the mutual-exclusion verifier (pairwise occupancy
checks) and predicate detectors evaluate one relation over *every*
ordered pair from a set of k intervals.  Doing that through the scalar
engine costs k² Python-level calls; this module stacks the intervals'
cut timestamps and extremal-index vectors into ``(k, P)`` matrices once
and answers each relation for all k² pairs with a handful of NumPy
broadcasting operations over a ``(k, k, P)`` comparison tensor.

The vectorised conditions are the *full-|P|-scan* forms of the linear
evaluation (sound for every relation, no anchoring subtleties), with
out-of-node-set components encoded so they are neutral:

* universal rows compare against a ``lastX``/``firstY`` vector that is
  0 outside the node set (0 never fails ``T ≥ 0``, and a first-index 0
  is treated as satisfied);
* existential rows exploit that future-cut components are ≥ 1, so a
  past component ≥ future component already implies it is ≥ 1.

Complexity: ``O(k² · P)`` total — the same as k² linear-engine calls
at full-|P| scan — but executed inside NumPy, which on realistic sizes
is 1–2 orders of magnitude faster than the per-pair Python loop (see
``benchmarks/bench_pairwise_matrix.py``).
"""

from __future__ import annotations

# repro: hot, dtype-strict

from collections.abc import Sequence
from typing import TYPE_CHECKING

import numpy as np

from ..nonatomic.event import NonatomicEvent
from ..nonatomic.proxies import Proxy, ProxyDefinition, proxy_of
from .cuts import CutStats, cut_stats
from .family import RELATION_ROWS, compare_rows, operand_tensor, subtest_matrix
from .relations import Relation, RelationSpec, subtest_key

if TYPE_CHECKING:
    from .context import CutCache

#: Synonym collapse for matrix memoization: R1 ≡ R1' and R4 ≡ R4' share
#: one kernel pass (the broadcasting forms are literally identical).
_CANON_RELATION = {
    Relation.R1P: Relation.R1,
    Relation.R4P: Relation.R4,
}

__all__ = ["IntervalSetMatrices", "relation_matrix", "pairwise_verdicts"]


class IntervalSetMatrices:
    """Stacked per-interval vectors for a set of k intervals.

    Rows are aligned with the input order.  Construction is the
    one-time cost (``O(k · |N| · P)`` for the cut folds); every
    :meth:`relation_matrix` call afterwards is pure NumPy.

    With ``cache`` (a :class:`~repro.core.context.CutCache`, e.g. via
    :meth:`AnalysisContext.matrices
    <repro.core.context.AnalysisContext.matrices>`), cut and extremal
    vectors are drawn from — and deposited into — the shared cache, so
    folds already paid by scalar queries (or an earlier stack) are not
    repeated.
    """

    __slots__ = ("intervals", "cache", "c1", "c2", "c3", "c4", "first",
                 "last", "_memo")

    def __init__(
        self, intervals: Sequence[NonatomicEvent], cache: "CutCache | None" = None
    ) -> None:
        if not intervals:
            raise ValueError("need at least one interval")
        ex = intervals[0].execution
        for iv in intervals:
            if iv.execution is not ex:
                raise ValueError("intervals belong to different executions")
        self.intervals = tuple(intervals)
        self.cache = cache
        self._memo: dict[tuple, np.ndarray] = {}
        # One vectorized columnar pass fills all six (k, P) matrices
        # (gather + segmented reduction over the clock tables); with a
        # cache, rows already folded are reused and cold rows deposited.
        if cache is not None:
            stats = cache.stats(self.intervals)
        else:
            stats = cut_stats(ex, self.intervals)
        self.c1 = stats.c1
        self.c2 = stats.c2
        self.c3 = stats.c3
        self.c4 = stats.c4
        # first/last component indices; 0 encodes "node not in N_X"
        self.first = stats.first
        self.last = stats.last

    def __len__(self) -> int:
        return len(self.intervals)

    # ------------------------------------------------------------------
    def relation_matrix(
        self, relation: Relation, mask_diagonal: bool = True
    ) -> np.ndarray:
        """``M[i, j] = relation(intervals[i], intervals[j])``.

        With ``mask_diagonal`` (default) the diagonal is forced False:
        self-pairs violate the disjointness precondition and carry no
        synchronization meaning.

        Results are memoized per (relation, mask) with synonyms
        collapsed (R1/R1', R4/R4' share one matrix): the stacks are
        immutable after construction, so repeat calls are a dict lookup.
        """
        key = (_CANON_RELATION.get(relation, relation), mask_diagonal)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        out = _relation_matrix_from(self, self, relation)
        if mask_diagonal:
            np.fill_diagonal(out, False)
        out.setflags(write=False)
        self._memo[key] = out
        return out

    def spec_matrix(
        self,
        spec: RelationSpec,
        proxy_definition: ProxyDefinition = ProxyDefinition.PER_NODE,
        mask_diagonal: bool = True,
    ) -> np.ndarray:
        """All-pairs matrix for a 32-family member (on the proxies).

        Memoized per (subtest key, proxy definition, mask): specs that
        canonicalise to the same ``≪`` subtest
        (:func:`~repro.core.relations.subtest_key` — synonym pairs such
        as ``R4(U,L)``/``R4'(U,L)``) share one kernel pass and one
        stored matrix, so a 32-spec sweep builds at most 24 matrices.
        """
        key = (subtest_key(spec), proxy_definition, mask_diagonal)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        out = subtest_matrix(self._operands(proxy_definition), subtest_key(spec))
        if mask_diagonal:
            np.fill_diagonal(out, False)
        out.setflags(write=False)
        self._memo[key] = out
        return out

    def _operands(self, proxy_definition: ProxyDefinition) -> np.ndarray:
        """The ``(k, 12, P)`` family operand tensor over this stack's
        intervals, memoized per proxy definition.

        One batched cut fill over the ``2k`` interleaved ``(L, U)``
        proxies supplies every row any subtest key selects, so a full
        32-spec sweep pays one gather however many spec matrices it
        builds.
        """
        key = ("__operands__", proxy_definition)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        if self.cache is not None:
            out = self.cache.family_operands(self.intervals, proxy_definition)
        else:
            proxies: list[NonatomicEvent] = []
            for iv in self.intervals:
                proxies.append(proxy_of(iv, Proxy.L, proxy_definition))
                proxies.append(proxy_of(iv, Proxy.U, proxy_definition))
            out = operand_tensor(
                cut_stats(self.intervals[0].execution, proxies)
            )
        self._memo[key] = out
        return out


def _relation_matrix_from(
    xs: "IntervalSetMatrices", ys: "IntervalSetMatrices", relation: Relation
) -> np.ndarray:
    """Core broadcasting kernel: rows index X, columns index Y.

    The comparison row per relation comes from the shared formula table
    (:data:`~repro.core.family.RELATION_ROWS`), so this surface, the
    gather form (:func:`pairwise_verdicts`) and the batched family
    kernel cannot drift apart.  X-side stacks broadcast as
    ``(k, 1, P)``, Y-side as ``(1, k, P)``.
    """
    kind, y_stat, x_stat = RELATION_ROWS[relation]
    y = getattr(ys, y_stat)[None, :, :]
    x = getattr(xs, x_stat)[:, None, :]
    return compare_rows(kind, y, x)


def relation_matrix(
    intervals: Sequence[NonatomicEvent],
    relation: Relation,
    mask_diagonal: bool = True,
) -> np.ndarray:
    """One-shot convenience wrapper around :class:`IntervalSetMatrices`."""
    return IntervalSetMatrices(intervals).relation_matrix(
        relation, mask_diagonal=mask_diagonal
    )


def pairwise_verdicts(
    stats: CutStats,
    relation: Relation,
    xs: np.ndarray,
    ys: np.ndarray,
) -> np.ndarray:
    """Evaluate ``relation(intervals[xs[q]], intervals[ys[q]])`` for a
    list of pairs — the gather form of the all-pairs kernel.

    ``stats`` stacks the distinct intervals' cut/extremal vectors
    (:func:`~repro.core.cuts.cut_stats`); ``xs``/``ys`` are row indices
    of equal length Q.  Cost is ``O(Q · P)`` with no ``(k, k, P)``
    tensor, so arbitrary query lists — the
    :class:`~repro.core.parallel.ParallelBatchExecutor` shards — stay
    linear in the number of queries even when almost every interval is
    distinct.  Conditions are identical to
    :meth:`IntervalSetMatrices.relation_matrix` (the sound
    full-``|P|``-scan forms).
    """
    xs = np.asarray(xs, dtype=np.intp)
    ys = np.asarray(ys, dtype=np.intp)
    kind, y_stat, x_stat = RELATION_ROWS[relation]
    return compare_rows(
        kind, getattr(stats, y_stat)[ys], getattr(stats, x_stat)[xs]
    )
