"""Zero-copy parallel batch evaluation over shared clock matrices.

The serial :meth:`~repro.core.evaluator.SynchronizationAnalyzer.batch_holds`
planner already collapses a query batch to NumPy broadcasts, but a
single interpreter still pays the whole planning and kernel cost.
At "millions of users" batch sizes the next win is process parallelism
— and the columnar substrate makes it cheap: both timestamp structures
are single contiguous ``(|E|, |P|)`` int32 buffers
(:class:`~repro.events.clocks.ClockTable`), so the parent publishes
them **once** through :mod:`multiprocessing.shared_memory` and every
worker maps them zero-copy.  Per task, only the query shards travel —
an interval is shipped as its per-node extremal encoding
(``O(|N_X|)`` integers), never its component event set.

Execution model
---------------
* Queries are normalized in the parent: spec strings are parsed, and
  32-family specs are resolved to their proxy intervals, so workers
  only ever evaluate the eight Table-1 base relations over cut stats.
* The normalized list is split into one contiguous shard per worker;
  each worker dedupes its shard's intervals, runs the columnar cut
  fill (:func:`~repro.core.cuts.cut_stats_from_extrema`) against the
  shared matrices and answers its queries with the per-pair gather
  kernel (:func:`~repro.core.pairwise.pairwise_verdicts`).
* Results are reassembled by shard position, so the output order is
  deterministic and identical to the serial planner's (input order).
* Below :attr:`ParallelBatchExecutor.min_parallel` queries — or with
  ``jobs <= 1`` — the executor falls back to its serial planner (same
  normalization, same kernels, no processes), because pool dispatch
  overhead dominates small batches.

Consistency
-----------
The executor records the execution
:attr:`~repro.events.poset.Execution.version` it published; when the
execution has grown (:meth:`~repro.events.poset.Execution.extend`), the
pool and the shared blocks are torn down and republished before the
next parallel run, so workers can never evaluate against stale clocks.

Diagnostics
-----------
Like the serial batch path, parallel evaluation does not tick the
:class:`~repro.core.counting.ComparisonCounter`.  Clock pass counters
are per-process; the pool initializer zeroes each worker's counters
(see :func:`repro.events.clocks.reset_clock_pass_counts`), so parent
diagnostics are never polluted by inherited worker state.
"""

from __future__ import annotations

# repro: hot, dtype-strict

import os
import weakref
from multiprocessing import get_context, pool, shared_memory
from collections.abc import Sequence

import numpy as np

from ..backends.base import CLOCK_DTYPE, reset_clock_pass_counts
from ..events.event import EventId
from ..nonatomic.event import NonatomicEvent
from ..nonatomic.proxies import ProxyDefinition, proxy_of
from .context import AnalysisContext
from ..backends.stats import cut_stats_from_extrema
from .pairwise import pairwise_verdicts
from .relations import Relation, RelationSpec, parse_spec

__all__ = ["ParallelBatchExecutor"]

#: One extremal-encoded interval on the wire: (nodes, firsts, lasts).
_Extrema = tuple[tuple[int, ...], tuple[int, ...], tuple[int, ...]]

#: One normalized query on the wire: (base relation, x row, y row).
_Item = tuple[Relation, int, int]


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
#: Per-worker substrate, filled by :func:`_worker_init`.
_WORKER: dict[str, object] = {}


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing shared block without taking ownership.

    Only the parent owns (and unlinks) the blocks.  On Python < 3.13
    there is no ``track=False``, and letting each worker register the
    same block with the resource tracker causes duplicate-unregister
    races at pool teardown — so registration is suppressed for the
    duration of the attach instead.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        from multiprocessing import resource_tracker

        original = resource_tracker.register
        resource_tracker.register = lambda *a, **k: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


def _worker_init(
    fwd_name: str,
    rev_name: str,
    shape: tuple[int, int],
    offsets: np.ndarray,
    lengths: np.ndarray,
) -> None:
    """Pool initializer: map the shared clock matrices, zero diagnostics.

    The matrices are mapped zero-copy from the parent's shared blocks;
    the pass counters are reset so this worker's diagnostics start from
    a clean per-process slate (see the clocks module docstring).
    """
    reset_clock_pass_counts()
    shm_f = _attach(fwd_name)
    shm_r = _attach(rev_name)
    fwd = np.ndarray(shape, dtype=CLOCK_DTYPE, buffer=shm_f.buf)
    rev = np.ndarray(shape, dtype=CLOCK_DTYPE, buffer=shm_r.buf)
    fwd.setflags(write=False)
    rev.setflags(write=False)
    _WORKER["fwd"] = fwd
    _WORKER["rev"] = rev
    _WORKER["offsets"] = np.asarray(offsets, dtype=np.int64)
    _WORKER["lengths"] = np.asarray(lengths, dtype=np.int64)
    # keep the mappings alive for the worker's lifetime
    _WORKER["shm"] = (shm_f, shm_r)


def _worker_eval(
    payload: tuple[list[_Item], list[_Extrema]],
) -> list[bool]:
    """Evaluate one query shard against the shared substrate."""
    items, extrema = payload
    stats = cut_stats_from_extrema(
        _WORKER["fwd"], _WORKER["rev"],
        _WORKER["offsets"], _WORKER["lengths"],
        extrema,
    )
    out = np.empty(len(items), dtype=bool)
    groups: dict[Relation, tuple[list[int], list[int], list[int]]] = {}
    for pos, (rel, xr, yr) in enumerate(items):
        positions, xs, ys = groups.setdefault(rel, ([], [], []))
        positions.append(pos)
        xs.append(xr)
        ys.append(yr)
    for rel, (positions, xs, ys) in groups.items():
        out[positions] = pairwise_verdicts(stats, rel, xs, ys)
    return out.tolist()


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------
def _release(resources: dict[str, object]) -> None:
    """Tear down the pool and the published shared blocks (idempotent)."""
    pool = resources.pop("pool", None)
    if pool is not None:
        pool.terminate()
        pool.join()
    for shm in resources.pop("shms", []) or []:
        try:
            shm.close()
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass


class ParallelBatchExecutor:
    """Shard large ``batch_holds`` query groups across worker processes.

    Parameters
    ----------
    context:
        The analysed execution (or its
        :class:`~repro.core.context.AnalysisContext`).
    jobs:
        Worker process count; ``None`` means ``os.cpu_count()``.  With
        ``clamp`` (the default) the request is capped at
        ``os.cpu_count()`` — more workers than cores only adds
        publication and scheduling overhead (a 1-core host running
        ``jobs=4`` measured *slower* than serial, see BENCH_PR2.json) —
        and a 1-core host therefore always takes the serial path.
        With ``jobs <= 1`` every batch takes the serial path.
    clamp:
        If True (default), cap ``jobs`` at ``os.cpu_count()``.  Pass
        False to force an oversubscribed pool (tests exercising pool
        mechanics on small hosts; oversubscription benchmarks).
    min_parallel:
        Size threshold: batches smaller than this are answered by the
        serial planner in-process (pool dispatch would cost more than
        it saves).  The analyzer exposes it as ``parallel_threshold``.

    Notes
    -----
    The first parallel batch pays the one-time publication cost (one
    copy of each clock matrix into shared memory plus pool startup);
    subsequent batches reuse both, so steady-state cost is shard
    pickling + the sharded kernels.  Call :meth:`close` (or use the
    executor as a context manager) to release the pool and the shared
    blocks; they are also released on garbage collection and at
    interpreter exit.
    """

    __slots__ = ("context", "jobs", "min_parallel", "_resources",
                 "_published_version", "_finalizer", "__weakref__")

    def __init__(
        self,
        context: "AnalysisContext | object",
        jobs: "int | None" = None,
        min_parallel: int = 1024,
        clamp: bool = True,
    ) -> None:
        self.context = AnalysisContext.of(context)
        self.jobs = int(jobs) if jobs else (os.cpu_count() or 1)
        if clamp:
            self.jobs = min(self.jobs, os.cpu_count() or 1)
        self.min_parallel = int(min_parallel)
        self._resources: dict[str, object] = {"pool": None, "shms": []}
        self._published_version: "int | None" = None
        self._finalizer = weakref.finalize(self, _release, self._resources)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Terminate the worker pool and unlink the shared blocks."""
        _release(self._resources)
        self._resources["pool"] = None
        self._resources["shms"] = []
        self._published_version = None

    def __enter__(self) -> "ParallelBatchExecutor":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def _ensure_pool(self) -> "pool.Pool":
        """The live pool against the current execution version.

        Publishes the columnar matrices into shared memory and spawns
        the pool on first use; republishes from scratch whenever the
        execution has grown since publication (version mismatch), so
        stale clocks are never served — the parallel arm of the
        version-keyed invalidation that
        :class:`~repro.core.context.CutCache` applies to cuts.
        """
        ex = self.context.execution
        if (
            self._resources["pool"] is not None
            and self._published_version == ex.version
        ):
            return self._resources["pool"]
        self.close()
        fwd = ex.forward_table
        rev = ex.reverse_table  # force the reverse pass before publishing
        nbytes = max(fwd.data.nbytes, 1)
        # Publication must not leak on a mid-publication failure (second
        # allocation failing, worker startup dying): segments are created
        # under a try that closes+unlinks every one already allocated
        # before re-raising (REP003 shared-memory lifecycle).
        shms: list[shared_memory.SharedMemory] = []
        try:
            shm_f = shared_memory.SharedMemory(create=True, size=nbytes)
            shms.append(shm_f)
            shm_r = shared_memory.SharedMemory(create=True, size=nbytes)
            shms.append(shm_r)
            shape = fwd.data.shape
            np.ndarray(shape, dtype=CLOCK_DTYPE, buffer=shm_f.buf)[:] = fwd.data
            np.ndarray(shape, dtype=CLOCK_DTYPE, buffer=shm_r.buf)[:] = rev.data
            pool = get_context().Pool(
                processes=self.jobs,
                initializer=_worker_init,
                initargs=(
                    shm_f.name, shm_r.name, shape,
                    np.asarray(fwd.offsets, dtype=np.int64),
                    np.asarray(fwd.lengths, dtype=np.int64),
                ),
            )
        except BaseException:
            for shm in shms:
                shm.close()
                shm.unlink()
            raise
        self._resources["shms"] = shms
        self._resources["pool"] = pool
        self._published_version = ex.version
        return pool

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------
    def _normalize(
        self,
        queries: Sequence[tuple[object, NonatomicEvent, NonatomicEvent]],
        proxy_definition: ProxyDefinition,
        check_disjoint: bool,
    ) -> tuple[list[tuple[Relation, int, int]], list[_Extrema]]:
        """Resolve every query to (base relation, x row, y row).

        Spec strings are parsed; 32-family members are replaced by
        their base relation over the query intervals' proxies (cached
        on the interval, so repeated intervals resolve once).  Distinct
        intervals are assigned rows in an extremal-encoding table —
        the only per-interval data that ever crosses to a worker.
        """
        ex = self.context.execution
        row_of: dict[frozenset[EventId], int] = {}
        extrema: list[_Extrema] = []
        items: list[tuple[Relation, int, int]] = []

        def row(iv: NonatomicEvent) -> int:
            r = row_of.get(iv.ids)
            if r is None:
                r = row_of[iv.ids] = len(extrema)
                nodes = iv.node_set
                extrema.append((
                    nodes,
                    tuple(iv.first_at(n) for n in nodes),
                    tuple(iv.last_at(n) for n in nodes),
                ))
            return r

        for spec, x, y in queries:
            if x.execution is not ex or y.execution is not ex:
                raise ValueError(
                    "query intervals do not belong to this executor's execution"
                )
            if check_disjoint and not x.ids.isdisjoint(y.ids):
                raise ValueError(
                    "X and Y share atomic events; the evaluation conditions "
                    "are exact only for disjoint intervals (pass "
                    "check_disjoint=False to evaluate anyway)"
                )
            if isinstance(spec, str):
                spec = parse_spec(spec)
            if isinstance(spec, RelationSpec):
                px = proxy_of(x, spec.proxy_x, proxy_definition)
                py = proxy_of(y, spec.proxy_y, proxy_definition)
                items.append((spec.relation, row(px), row(py)))
            else:
                items.append((spec, row(x), row(y)))
        return items, extrema

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def execute(
        self,
        queries: "Sequence[Tuple[object, NonatomicEvent, NonatomicEvent]] | Iterable",
        proxy_definition: ProxyDefinition = ProxyDefinition.PER_NODE,
        check_disjoint: bool = True,
    ) -> list[bool]:
        """Answer many ``(spec, X, Y)`` queries; results in input order.

        Verdicts are identical to the serial planner's (and to scalar
        :meth:`~repro.core.evaluator.SynchronizationAnalyzer.holds`) on
        every query; only the execution strategy differs.  Batches
        below :attr:`min_parallel` (or ``jobs <= 1``) run serially
        in-process.
        """
        qs = list(queries)
        items, extrema = self._normalize(qs, proxy_definition, check_disjoint)
        if len(items) < self.min_parallel or self.jobs <= 1:
            return self._serial(items, extrema)
        pool = self._ensure_pool()
        payloads = []
        for lo, hi in self._shards(len(items)):
            shard = items[lo:hi]
            local_row: dict[int, int] = {}
            local_extrema: list[_Extrema] = []
            local_items: list[_Item] = []
            for rel, xr, yr in shard:
                lx = local_row.get(xr)
                if lx is None:
                    lx = local_row[xr] = len(local_extrema)
                    local_extrema.append(extrema[xr])
                ly = local_row.get(yr)
                if ly is None:
                    ly = local_row[yr] = len(local_extrema)
                    local_extrema.append(extrema[yr])
                local_items.append((rel, lx, ly))
            payloads.append((local_items, local_extrema))
        out: list[bool] = []
        for verdicts in pool.map(_worker_eval, payloads):
            out.extend(verdicts)
        return out

    def _shards(self, n: int) -> list[tuple[int, int]]:
        """Contiguous, near-even shard bounds — one per worker."""
        shards = min(self.jobs, n) or 1
        bounds = np.linspace(0, n, shards + 1, dtype=np.int64)
        return [
            (int(lo), int(hi))
            for lo, hi in zip(bounds[:-1], bounds[1:], strict=True)
            if hi > lo
        ]

    def _serial(
        self, items: list[tuple[Relation, int, int]], extrema: list[_Extrema]
    ) -> list[bool]:
        """The in-process fallback: same kernels, no pool."""
        ex = self.context.execution
        fwd = ex.forward_table
        rev = ex.reverse_table
        stats = cut_stats_from_extrema(
            fwd.data, rev.data, fwd.offsets, fwd.lengths, extrema
        )
        out = np.empty(len(items), dtype=bool)
        groups: dict[Relation, tuple[list[int], list[int], list[int]]] = {}
        for pos, (rel, xr, yr) in enumerate(items):
            positions, xs, ys = groups.setdefault(rel, ([], [], []))
            positions.append(pos)
            xs.append(xr)
            ys.append(yr)
        for rel, (positions, xs, ys) in groups.items():
            out[positions] = pairwise_verdicts(stats, rel, xs, ys)
        return out.tolist()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "live" if self._resources["pool"] is not None else "idle"
        return (
            f"ParallelBatchExecutor(jobs={self.jobs}, "
            f"min_parallel={self.min_parallel}, pool={state})"
        )
