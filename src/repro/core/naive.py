"""Naive relation evaluation straight from the definitions.

Evaluates each relation by expanding its quantifiers over *all*
component atomic events of X and Y — ``O(|X| · |Y|)`` causality checks.
This is the cost the paper's introduction attributes to evaluation
*"without the use of proxies in the definitions of causality"*, and it
serves as the ground-truth semantics every other engine is verified
against.
"""

from __future__ import annotations

from ..events.event import EventId
from ..events.poset import Execution
from ..nonatomic.event import NonatomicEvent
from ..nonatomic.proxies import ProxyDefinition, proxy_of
from .context import AnalysisContext
from .counting import NULL_COUNTER, ComparisonCounter
from .relations import Relation, RelationSpec, quantifier_eval

__all__ = ["NaiveEvaluator"]


class NaiveEvaluator:
    """Definition-level evaluator (``O(|X| · |Y|)`` per relation).

    Parameters
    ----------
    execution:
        The analysed execution, or an
        :class:`~repro.core.context.AnalysisContext` (this engine only
        needs the forward clocks, but accepts the context so all
        engines are interchangeable strategies over one substrate).
    counter:
        Optional :class:`ComparisonCounter`; each causality check counts
        as one integer comparison (the canonical clock test is a single
        comparison once clocks exist).
    proxy_definition:
        Proxy definition used when evaluating 32-family specs.
    """

    name = "naive"

    def __init__(
        self,
        execution: "Execution | AnalysisContext",
        counter: ComparisonCounter | None = None,
        proxy_definition: ProxyDefinition = ProxyDefinition.PER_NODE,
    ) -> None:
        self.context = AnalysisContext.of(execution)
        self.execution = self.context.execution
        self.counter = counter if counter is not None else NULL_COUNTER
        self.proxy_definition = proxy_definition

    # ------------------------------------------------------------------
    def _precedes(self, a: EventId, b: EventId) -> bool:
        self.counter.add(1, "test")
        return self.execution.precedes(a, b)

    def evaluate(
        self, relation: Relation, x: NonatomicEvent, y: NonatomicEvent
    ) -> bool:
        """Evaluate a base relation ``R(X, Y)`` over all atomic events."""
        return quantifier_eval(self._precedes, relation, sorted(x.ids), sorted(y.ids))

    def evaluate_spec(
        self, spec: RelationSpec, x: NonatomicEvent, y: NonatomicEvent
    ) -> bool:
        """Evaluate a 32-family relation ``r(X, Y) = R(X̂, Ŷ)``.

        The proxies are formed per the configured definition and the
        base relation is expanded over their events.
        """
        px = proxy_of(x, spec.proxy_x, self.proxy_definition)
        py = proxy_of(y, spec.proxy_y, self.proxy_definition)
        return self.evaluate(spec.relation, px, py)
