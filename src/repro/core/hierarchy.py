"""The implication hierarchy of the relations.

The relations of Table 1 form a hierarchy under logical implication (for
non-empty X and Y):

.. code-block:: text

            R1 ≡ R1'
           /        \\
         R2'         R3
          |           |
         R2          R3'
           \\        /
            R4 ≡ R4'

The 32-relation family inherits this hierarchy and adds the *proxy
monotonicity* edges (valid under the Definition-2 proxies, where the
``L``/``U`` events correspond per node): for any base relation ``R``,

    ``R(U, py) ⟹ R(L, py)``   and   ``R(px, L) ⟹ R(px, U)``

since replacing an ``x`` by a causally earlier one, or a ``y`` by a
causally later one, only makes ``x ≺ y`` easier.

These implications power two things: *property tests* (every generated
instance must respect the hierarchy) and the *pruned batch evaluation*
of Problem 4(ii) (when a strong relation holds, the relations it implies
need no test; when a weak one fails, the ones implying it fail too) —
ablation A-3 in DESIGN.md.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

import networkx as nx

from ..nonatomic.proxies import Proxy
from .relations import BASE_RELATIONS, FAMILY32, Relation, RelationSpec

__all__ = [
    "BASE_IMPLICATIONS",
    "base_dag",
    "family_dag",
    "implies",
    "maximal_true",
    "evaluate_all_pruned",
]

RelLike = Relation | RelationSpec

#: Direct implication edges between base relations (non-empty X, Y).
BASE_IMPLICATIONS: tuple[tuple[Relation, Relation], ...] = (
    (Relation.R1, Relation.R1P),
    (Relation.R1P, Relation.R1),
    (Relation.R4, Relation.R4P),
    (Relation.R4P, Relation.R4),
    (Relation.R1, Relation.R2P),
    (Relation.R1, Relation.R3),
    (Relation.R2P, Relation.R2),
    (Relation.R3, Relation.R3P),
    (Relation.R2, Relation.R4),
    (Relation.R3P, Relation.R4),
)


def base_dag() -> "nx.DiGraph":
    """Implication digraph over the 8 base relations (edges = implies).

    Synonym pairs (R1/R1', R4/R4') appear as 2-cycles; the graph is a
    DAG on the equivalence classes.
    """
    g = nx.DiGraph()
    g.add_nodes_from(BASE_RELATIONS)
    g.add_edges_from(BASE_IMPLICATIONS)
    return g


def family_dag() -> "nx.DiGraph":
    """Implication digraph over the 32-relation family.

    Combines the base hierarchy (per proxy combination) with the proxy
    monotonicity edges.  Cached at module level after first build.
    """
    global _FAMILY_DAG
    if _FAMILY_DAG is None:
        g = nx.DiGraph()
        g.add_nodes_from(FAMILY32)
        for a, b in BASE_IMPLICATIONS:
            for px in (Proxy.L, Proxy.U):
                for py in (Proxy.L, Proxy.U):
                    g.add_edge(RelationSpec(a, px, py), RelationSpec(b, px, py))
        for rel in BASE_RELATIONS:
            for py in (Proxy.L, Proxy.U):
                g.add_edge(
                    RelationSpec(rel, Proxy.U, py), RelationSpec(rel, Proxy.L, py)
                )
            for px in (Proxy.L, Proxy.U):
                g.add_edge(
                    RelationSpec(rel, px, Proxy.L), RelationSpec(rel, px, Proxy.U)
                )
        _FAMILY_DAG = g
    return _FAMILY_DAG


_FAMILY_DAG: "nx.DiGraph | None" = None
_REACH_CACHE: dict[RelLike, frozenset[RelLike]] = {}
_ANC_CACHE: dict[RelLike, frozenset[RelLike]] = {}
_ORDER_CACHE: dict[tuple[RelLike, ...], tuple[RelLike, ...]] = {}


def _descendants(a: RelLike) -> frozenset[RelLike]:
    cached = _REACH_CACHE.get(a)
    if cached is None:
        g = base_dag() if isinstance(a, Relation) else family_dag()
        cached = frozenset(nx.descendants(g, a))
        _REACH_CACHE[a] = cached
    return cached


def _ancestors(a: RelLike) -> frozenset[RelLike]:
    cached = _ANC_CACHE.get(a)
    if cached is None:
        g = base_dag() if isinstance(a, Relation) else family_dag()
        cached = frozenset(nx.ancestors(g, a))
        _ANC_CACHE[a] = cached
    return cached


def _topological_order(universe: tuple[RelLike, ...]) -> tuple[RelLike, ...]:
    """Strongest-first visit order over ``universe``, memoized.

    The hierarchy is a fixed module-level structure, so the
    condensation + topological sort is paid once per distinct universe
    (in practice: once for :data:`FAMILY32`, once for
    :data:`BASE_RELATIONS`) instead of on every pruned evaluation.
    """
    cached = _ORDER_CACHE.get(universe)
    if cached is None:
        g = base_dag() if isinstance(universe[0], Relation) else family_dag()
        condensation = nx.condensation(g.subgraph(universe))
        order: list[RelLike] = []
        for scc in nx.topological_sort(condensation):
            order.extend(condensation.nodes[scc]["members"])
        cached = _ORDER_CACHE[universe] = tuple(order)
    return cached


def implies(a: RelLike, b: RelLike) -> bool:
    """True iff ``a(X, Y)`` logically implies ``b(X, Y)``.

    Both arguments must be base relations, or both 32-family specs.
    Reflexive (``implies(a, a)`` is True).
    """
    if type(a) is not type(b):
        raise TypeError("cannot mix base relations and 32-family specs")
    return a == b or b in _descendants(a)


def maximal_true(results: dict[RelLike, bool]) -> tuple[RelLike, ...]:
    """The strongest relations that hold: true entries not implied by
    any *strictly stronger* true entry.

    Mutually equivalent relations (the R1/R1' and R4/R4' synonym pairs)
    do not eliminate each other: both are reported when maximal.
    """
    true_set = [r for r, v in results.items() if v]
    out: list[RelLike] = []
    for r in true_set:
        dominated = any(
            other != r
            and r in _descendants(other)
            and other not in _descendants(r)  # strictly stronger, not a synonym
            for other in true_set
        )
        if not dominated:
            out.append(r)
    return tuple(sorted(out, key=str))


def evaluate_all_pruned(
    evaluate: Callable[[RelLike], bool],
    universe: Iterable[RelLike] = FAMILY32,
) -> tuple[dict[RelLike, bool], int]:
    """Evaluate every relation in ``universe`` with hierarchy pruning.

    Relations are visited strongest-first (topological order).  Each
    actual evaluation propagates: a True result marks all implied
    relations True; a False result marks all implying relations False.

    Returns
    -------
    (results, evaluations):
        The full result map and the number of actual ``evaluate`` calls
        (the savings metric reported by ablation A-3).
    """
    universe = tuple(universe)
    if not universe:
        return {}, 0
    order = _topological_order(universe)
    members = frozenset(universe)

    known: dict[RelLike, bool] = {}
    evaluations = 0
    for r in order:
        if r in known:
            continue
        value = evaluate(r)
        evaluations += 1
        known[r] = value
        # propagation uses full-hierarchy reachability (memoized); the
        # implications hold regardless of which relations the universe
        # names, so restricting to in-universe *paths* would only prune
        # less.
        if value:
            for d in _descendants(r):
                if d in members:
                    known.setdefault(d, True)
        else:
            for anc in _ancestors(r):
                if anc in members:
                    known.setdefault(anc, False)
    return {r: known[r] for r in universe}, evaluations
