"""Cuts of an execution and the ``≪`` relation (Sections 2.1–2.2).

A *cut* (Definition 5) is the union of a downward-closed subset of each
local execution ``E_i`` — i.e. a per-node prefix.  Cuts need **not** be
globally consistent global states: the complement-of-causal-future cut
``e↑`` is explicitly not downward-closed in ``(E, ≺)``.

Representation
--------------
A cut is represented by an integer vector ``c`` of length ``|P|`` where
``c[i]`` is the local index of the cut's *surface* event at node ``i``
(Definition 6): ``0`` means the prefix contains only ``⊥_i``; ``k_i+1``
means it extends through ``⊤_i``.  Under the index conventions of this
reproduction the vector doubles as the cut's timestamp ``T(C)``
(Definition 15): ``T(C)[i]`` is the local index of the latest event of
``C`` at node ``i``.

This module implements:

* :class:`Cut` with lattice operations (Lemma 16: union = componentwise
  ``max``, intersection = componentwise ``min``);
* the special cuts ``↓e`` (Def. 8) and ``e↑`` (Def. 9);
* the four cuts of a nonatomic event (Table 2 / Definition 10):
  ``C1(X)=∩⇓X``, ``C2(X)=∪⇓X``, ``C3(X)=∩⇑X``, ``C4(X)=∪⇑X``;
* the ``≪`` relation in its canonical vector form *and* in the four
  literal set-based forms of Definition 7 (property-tested equivalent);
* slow reference (set-based) constructions of all the above, used as
  oracles by tests and as the "no condensation" baseline by benchmarks.
"""

from __future__ import annotations

# repro: hot, dtype-strict

from dataclasses import dataclass
from collections.abc import Iterable, Sequence
from typing import TYPE_CHECKING

import numpy as np

from ..backends.stats import (  # noqa: F401  (re-exported compatibility API)
    CutStats,
    cut_stats_from_arrays,
    cut_stats_from_extrema,
)
from ..backends.vector import vector_cut_stats
from ..events.event import EventId
from ..events.poset import Execution
from ..nonatomic.event import NonatomicEvent

if TYPE_CHECKING:
    from .relations import SubtestKind

__all__ = [
    "Cut",
    "CutQuadruple",
    "CutStats",
    "cut_stats",
    "cut_stats_from_arrays",
    "cut_stats_from_extrema",
    "batch_quadruples",
    "past_cut",
    "future_cut",
    "cut_intersection",
    "cut_union",
    "cut_C1",
    "cut_C2",
    "cut_C3",
    "cut_C4",
    "cuts_of",
    "ll",
    "not_ll",
    "evaluate_subtest",
    "ll_form1",
    "not_ll_form2",
    "ll_form3",
    "not_ll_form4",
    "reference_past_set",
    "reference_future_cut_set",
    "cut_from_event_set",
]


class Cut:
    """An execution prefix, represented by its surface index vector.

    Instances are immutable; the vector is a read-only int64 array.
    """

    __slots__ = ("_execution", "_vec")

    def __init__(self, execution: Execution, vector: Sequence[int]) -> None:
        vec = np.asarray(vector, dtype=np.int64).copy()
        if vec.shape != (execution.num_nodes,):
            raise ValueError(
                f"cut vector must have length {execution.num_nodes}, "
                f"got shape {vec.shape}"
            )
        for i, v in enumerate(vec):
            if not (0 <= v <= execution.num_real(i) + 1):
                raise ValueError(
                    f"cut component {i} = {v} out of range "
                    f"[0, {execution.num_real(i) + 1}]"
                )
        vec.setflags(write=False)
        self._execution = execution
        self._vec = vec

    @classmethod
    def _trusted(cls, execution: Execution, vec: np.ndarray) -> "Cut":
        """Wrap an already-validated, read-only int64 vector (no copy).

        Fast path for the columnar batch kernels, whose outputs are
        in-range by construction; skipping the per-component Python
        validation loop is what keeps the one-pass cut fill vectorized
        end to end.
        """
        cut = object.__new__(cls)
        cut._execution = execution
        cut._vec = vec
        return cut

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def execution(self) -> Execution:
        """The execution this cut is a prefix of."""
        return self._execution

    @property
    def vector(self) -> np.ndarray:
        """The surface index vector ``T(C)`` (read-only)."""
        return self._vec

    @property
    def timestamp(self) -> np.ndarray:
        """Alias for :attr:`vector` — the cut timestamp of Def. 15."""
        return self._vec

    def contains(self, eid: EventId) -> bool:
        """True iff the (real or dummy) event ``eid`` belongs to the cut.

        Every cut contains all ``⊥_i`` (index 0) by definition.
        """
        node, idx = eid
        return 0 <= node < len(self._vec) and 0 <= idx <= self._vec[node]

    def surface_ids(self) -> tuple[EventId, ...]:
        """``S(C)`` (Definition 6): the latest event of the cut at every
        node — possibly a dummy ``⊥_i`` (index 0) or ``⊤_i``."""
        return tuple((i, int(v)) for i, v in enumerate(self._vec))

    def real_surface_ids(self) -> tuple[EventId, ...]:
        """The surface events that are real (excluding ``⊥``/``⊤``)."""
        ex = self._execution
        return tuple(
            (i, int(v))
            for i, v in enumerate(self._vec)
            if 1 <= v <= ex.num_real(i)
        )

    @property
    def support(self) -> tuple[int, ...]:
        """Nodes whose prefix extends beyond ``⊥_i`` (``c[i] >= 1``)."""
        return tuple(int(i) for i in np.flatnonzero(self._vec >= 1))

    @property
    def node_set(self) -> tuple[int, ...]:
        """``N_C`` per Definition 1: nodes contributing a *real* event."""
        ex = self._execution
        return tuple(
            i for i, v in enumerate(self._vec) if v >= 1 and ex.num_real(i) >= 1
        )

    def is_bottom(self) -> bool:
        """True iff the cut is ``E^⊥`` (contains only the ``⊥_i``)."""
        return not self._vec.any()

    def event_ids(self) -> set[EventId]:
        """All *real* event ids in the cut (``O(|C|)``; for small cuts,
        tests and reference computations)."""
        ex = self._execution
        out: set[EventId] = set()
        for i, v in enumerate(self._vec):
            hi = min(int(v), ex.num_real(i))
            out.update((i, j) for j in range(1, hi + 1))
        return out

    def is_downward_closed(self) -> bool:
        """True iff the cut is downward-closed in the *global* order
        ``(E, ≺)`` (i.e. a consistent global state).

        ``↓e`` and the past cuts C1/C2 are; ``e↑`` and the future cuts
        C3/C4 generally are not (the paper points this out after
        Lemma 11).  A prefix through ``⊤_i`` is downward-closed only if
        it contains every real event.
        """
        ex = self._execution
        for i, v in enumerate(self._vec):
            v = int(v)
            if v == 0:
                continue
            if v == ex.num_real(i) + 1:
                # ⊤_i is preceded by every real event of every node.
                if any(
                    self._vec[j] < ex.num_real(j) for j in range(len(self._vec))
                ):
                    return False
                continue
            clock = ex.clock((i, v))
            if np.any(clock > self._vec):
                return False
        return True

    # ------------------------------------------------------------------
    # lattice structure
    # ------------------------------------------------------------------
    def union(self, other: "Cut") -> "Cut":
        """Cut union (componentwise ``max``; Lemma 16)."""
        self._check_same(other)
        return Cut(self._execution, np.maximum(self._vec, other._vec))

    def intersection(self, other: "Cut") -> "Cut":
        """Cut intersection (componentwise ``min``; Lemma 16)."""
        self._check_same(other)
        return Cut(self._execution, np.minimum(self._vec, other._vec))

    def issubset(self, other: "Cut") -> bool:
        """Set inclusion ``C ⊆ C'`` (componentwise ``<=``)."""
        self._check_same(other)
        return bool(np.all(self._vec <= other._vec))

    def _check_same(self, other: "Cut") -> None:
        if self._execution is not other._execution:
            raise ValueError("cuts belong to different executions")

    # ------------------------------------------------------------------
    # dunder
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Cut):
            return NotImplemented
        return self._execution is other._execution and bool(
            np.array_equal(self._vec, other._vec)
        )

    def __hash__(self) -> int:
        return hash((id(self._execution), self._vec.tobytes()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Cut({list(map(int, self._vec))})"


# ----------------------------------------------------------------------
# special cuts of atomic events (Definitions 8 and 9)
# ----------------------------------------------------------------------
def past_cut(execution: Execution, eid: EventId) -> Cut:
    """``↓e`` (Definition 8): the causal past of ``e``, as a cut.

    ``T(↓e) = T(e)``: component ``i`` is the number of node-``i``
    events causally ``≼ e``.
    """
    execution.check_id(eid)
    return Cut(execution, execution.clock(eid))


def future_cut(execution: Execution, eid: EventId) -> Cut:
    """``e↑`` (Definition 9): the complement of the causal future.

    At each node the prefix extends up to and *including* the earliest
    event causally ``≽ e`` (``⊤_i`` if no real event there is).  With
    reverse timestamps, ``T(e↑)[i] = k_i + 1 - T^R(e)[i]`` — the
    paper's ``|E_i| - T^R(x)[i] - 1`` under its dummy-inclusive count.
    """
    execution.check_id(eid)
    lengths = np.asarray(execution.lengths, dtype=np.int64)
    return Cut(execution, lengths + 1 - execution.rclock(eid))


# ----------------------------------------------------------------------
# lattice folds (Lemma 16)
# ----------------------------------------------------------------------
def cut_intersection(cuts: Iterable[Cut]) -> Cut:
    """Intersection of one or more cuts (componentwise ``min``)."""
    it = iter(cuts)
    try:
        first = next(it)
    except StopIteration:
        raise ValueError("cut_intersection requires at least one cut") from None
    vec = first.vector.copy()
    ex = first.execution
    for c in it:
        if c.execution is not ex:
            raise ValueError("cuts belong to different executions")
        np.minimum(vec, c.vector, out=vec)
    return Cut(ex, vec)


def cut_union(cuts: Iterable[Cut]) -> Cut:
    """Union of one or more cuts (componentwise ``max``)."""
    it = iter(cuts)
    try:
        first = next(it)
    except StopIteration:
        raise ValueError("cut_union requires at least one cut") from None
    vec = first.vector.copy()
    ex = first.execution
    for c in it:
        if c.execution is not ex:
            raise ValueError("cuts belong to different executions")
        np.maximum(vec, c.vector, out=vec)
    return Cut(ex, vec)


# ----------------------------------------------------------------------
# the four cuts of a nonatomic event (Table 2)
# ----------------------------------------------------------------------
def _stack_clocks(x: NonatomicEvent, ids: Sequence[EventId], reverse: bool) -> np.ndarray:
    ex = x.execution
    fetch = ex.rclock if reverse else ex.clock
    return np.stack([fetch(eid) for eid in ids])


def cut_C1(x: NonatomicEvent) -> Cut:
    """``C1(X) = ∩⇓X = ∩_{x∈X} ↓x`` — the maximum execution prefix
    every component event of X has knowledge of.

    Per the observation at the end of Section 2.3, only the per-node
    *least* component events need to be folded, so the computation is
    an ``O(|N_X| · |P|)`` componentwise ``min``.
    """
    key = ("cut", "C1", x.execution.version)
    cached = x.cache.get(key)
    if cached is None:
        rows = _stack_clocks(x, x.first_ids(), reverse=False)
        cached = Cut(x.execution, rows.min(axis=0))
        x.cache[key] = cached
    return cached


def cut_C2(x: NonatomicEvent) -> Cut:
    """``C2(X) = ∪⇓X = ∪_{x∈X} ↓x`` — the maximum prefix the events of
    X *collectively* have knowledge of.  Folds the per-node *greatest*
    component events with componentwise ``max``."""
    key = ("cut", "C2", x.execution.version)
    cached = x.cache.get(key)
    if cached is None:
        rows = _stack_clocks(x, x.last_ids(), reverse=False)
        cached = Cut(x.execution, rows.max(axis=0))
        x.cache[key] = cached
    return cached


def cut_C3(x: NonatomicEvent) -> Cut:
    """``C3(X) = ∩⇑X = ∩_{x∈X} x↑`` — its surface holds the earliest
    event per node causally preceded by *some* component of X."""
    key = ("cut", "C3", x.execution.version)
    cached = x.cache.get(key)
    if cached is None:
        lengths = np.asarray(x.execution.lengths, dtype=np.int64)
        rows = _stack_clocks(x, x.first_ids(), reverse=True)
        cached = Cut(x.execution, lengths + 1 - rows.max(axis=0))
        x.cache[key] = cached
    return cached


def cut_C4(x: NonatomicEvent) -> Cut:
    """``C4(X) = ∪⇑X = ∪_{x∈X} x↑`` — its surface holds the earliest
    event per node causally preceded by *every* component of X."""
    key = ("cut", "C4", x.execution.version)
    cached = x.cache.get(key)
    if cached is None:
        lengths = np.asarray(x.execution.lengths, dtype=np.int64)
        rows = _stack_clocks(x, x.last_ids(), reverse=True)
        cached = Cut(x.execution, lengths + 1 - rows.min(axis=0))
        x.cache[key] = cached
    return cached


@dataclass(frozen=True, slots=True)
class CutQuadruple:
    """The four cuts of Table 2 for one nonatomic event."""

    c1: Cut  # ∩⇓X
    c2: Cut  # ∪⇓X
    c3: Cut  # ∩⇑X
    c4: Cut  # ∪⇑X


def cuts_of(x: NonatomicEvent) -> CutQuadruple:
    """All four Table-2 cuts of ``x`` (computed once, cached — Key Idea 1)."""
    return CutQuadruple(cut_C1(x), cut_C2(x), cut_C3(x), cut_C4(x))


# ----------------------------------------------------------------------
# columnar batch kernel: all four cuts for a whole interval set at once
# ----------------------------------------------------------------------
# The stacked container (CutStats) and the raw-array kernels
# (cut_stats_from_arrays / cut_stats_from_extrema) now live in
# repro.backends.stats — below the backend seam — and are re-exported
# above for compatibility; the Execution-level fill delegates to the
# vector backend's implementation.


def cut_stats(
    execution: Execution, intervals: Sequence[NonatomicEvent]
) -> CutStats:
    """All four Table-2 cuts (plus extremal vectors) for a whole
    interval set in one vectorized pass over the columnar clock tables.

    Row ``i`` equals ``cuts_of(intervals[i])``'s vectors — the
    equivalence is property-tested — but the fill is a single
    gather-and-reduce over the ``(|E|, |P|)`` matrices instead of a
    per-interval Python fold, which is what the ``≥5x`` cut-fill
    speedup of ``benchmarks/bench_parallel_batch.py`` measures.

    Delegates to
    :func:`~repro.backends.vector.vector_cut_stats` — the vector-clock
    backend's fill; backend-agnostic callers should go through
    :meth:`repro.core.context.CutCache.stats` instead, which routes to
    the context's configured :class:`~repro.backends.base.CausalityBackend`.
    """
    return vector_cut_stats(execution, intervals)


def batch_quadruples(
    execution: Execution, intervals: Sequence[NonatomicEvent]
) -> list[CutQuadruple]:
    """The cut quadruples of many intervals via one columnar fill.

    Semantically ``[cuts_of(iv) for iv in intervals]`` without the
    per-interval fold loop; the returned cuts wrap read-only rows of
    the batch matrices (zero-copy).
    """
    st = cut_stats(execution, intervals)
    return [
        CutQuadruple(
            Cut._trusted(execution, st.c1[i]),
            Cut._trusted(execution, st.c2[i]),
            Cut._trusted(execution, st.c3[i]),
            Cut._trusted(execution, st.c4[i]),
        )
        for i in range(len(intervals))
    ]


# ----------------------------------------------------------------------
# the ≪ relation (Definition 7)
# ----------------------------------------------------------------------
def ll(c: Cut, cp: Cut) -> bool:
    """``≪(C, C')`` in canonical vector form.

    ``C ≪ C'`` iff ``C'`` is not ``E^⊥`` and, at every node where C
    extends beyond ``⊥``, C's prefix is strictly shorter than C's:
    ``∀i: c[i] = 0 ∨ c[i] < c'[i]``.
    """
    v, w = c.vector, cp.vector
    if not w.any():
        return False
    return bool(np.all((v == 0) | (v < w)))


def not_ll(c: Cut, cp: Cut) -> bool:
    """``≪̸(C, C')`` — some surface event of C equals or happens
    causally after some surface event of C'.  This is the form the
    relation evaluations of Table 1 consume."""
    return not ll(c, cp)


def evaluate_subtest(kind: "SubtestKind", y_vec: np.ndarray, x_vec: np.ndarray) -> bool:
    """Evaluate one canonical ``≪`` subtest (Theorem 19/20 factoring).

    ``kind`` is a :class:`~repro.core.relations.SubtestKind`; ``y_vec``
    and ``x_vec`` are the length-``|P|`` operand rows its key selects
    (past-cut timestamps / extremal indices of Ŷ against future-cut
    timestamps / extremal indices of X̂).  The three shapes are the
    full-``|P|``-scan forms of the vectorised all-pairs kernel
    (:func:`repro.core.pairwise._relation_matrix_from`), so verdicts
    agree with every engine on disjoint intervals.
    """
    from .relations import SubtestKind

    if kind is SubtestKind.EXISTS_CUT:
        return bool(np.any(y_vec >= x_vec))
    if kind is SubtestKind.FORALL_PAST:
        # lastX̂ = 0 off N_X̂ is neutral: cut timestamps are >= 0.
        return bool(np.all(y_vec >= x_vec))
    if kind is SubtestKind.FORALL_FUTURE:
        # firstŶ = 0 encodes "node not in N_Ŷ" and is skipped.
        return bool(np.all((y_vec == 0) | (y_vec >= x_vec)))
    raise ValueError(f"unknown subtest kind: {kind!r}")  # pragma: no cover


# Literal set-based renderings of Definition 7's four forms.  Forms 1
# and 3 define ≪; forms 2 and 4 (their De Morgan duals) define ≪̸, as
# the paper notes below the definition.  These are O(|P| + |C|) and
# exist to be property-tested against the canonical vector form.

def _surface_non_bottom(c: Cut) -> list[EventId]:
    return [eid for eid in c.surface_ids() if eid[1] != 0]


def ll_form1(c: Cut, cp: Cut) -> bool:
    """Definition 7.1: every non-``⊥`` surface event of C is inside C'
    but not on its surface, and C' is not ``E^⊥``."""
    if cp.is_bottom():
        return False
    surface_cp = set(cp.surface_ids())
    return all(
        z not in surface_cp and cp.contains(z) for z in _surface_non_bottom(c)
    )


def not_ll_form2(c: Cut, cp: Cut) -> bool:
    """Definition 7.2 (a condition for ``≪̸``): some non-``⊥`` surface
    event of C lies on C's surface or outside C', or C' is ``E^⊥``."""
    if cp.is_bottom():
        return True
    surface_cp = set(cp.surface_ids())
    return any(
        z in surface_cp or not cp.contains(z) for z in _surface_non_bottom(c)
    )


def ll_form3(c: Cut, cp: Cut) -> bool:
    """Definition 7.3: no non-``⊥`` surface event of C' is inside C,
    C' is not ``E^⊥``, and the support of C is contained in that of C'.

    The containment clause uses the cut *support* (``c[i] >= 1``), the
    reading under which the four forms coincide even when a prefix ends
    at a ``⊤_i`` (see DESIGN.md §2).
    """
    if cp.is_bottom():
        return False
    if not set(c.support) <= set(cp.support):
        return False
    return all(not c.contains(z) for z in _surface_non_bottom(cp))


def not_ll_form4(c: Cut, cp: Cut) -> bool:
    """Definition 7.4 (a condition for ``≪̸``): some non-``⊥`` surface
    event of C' is inside C, or C' is ``E^⊥``, or C's support is not
    contained in C's."""
    if cp.is_bottom():
        return True
    if not set(c.support) <= set(cp.support):
        return True
    return any(c.contains(z) for z in _surface_non_bottom(cp))


# ----------------------------------------------------------------------
# slow reference constructions (oracles and baselines)
# ----------------------------------------------------------------------
def reference_past_set(execution: Execution, eid: EventId) -> frozenset[EventId]:
    """``↓e`` as an explicit set of real events, computed from pairwise
    precedence tests (no condensation).  Oracle for :func:`past_cut`."""
    return frozenset(
        other
        # repro-lint: disable=REP004 -- deliberately slow reference oracle
        for other in execution.iter_ids()
        if execution.leq(other, eid)
    )


def reference_future_cut_set(
    execution: Execution, eid: EventId
) -> frozenset[EventId]:
    """``e↑`` as an explicit set of real events, straight from
    Definition 9: all events not ``≽ e`` plus, per node, the earliest
    event ``≽ e``.  Oracle for :func:`future_cut` (real part)."""
    not_future = {
        other
        # repro-lint: disable=REP004 -- deliberately slow reference oracle
        for other in execution.iter_ids()
        if not execution.leq(eid, other)
    }
    for i in range(execution.num_nodes):
        for j in range(1, execution.num_real(i) + 1):
            if execution.leq(eid, (i, j)):
                not_future.add((i, j))
                break
    return frozenset(not_future)


def cut_from_event_set(
    execution: Execution, events: Iterable[EventId]
) -> Cut:
    """Build the cut whose real content is exactly ``events``.

    ``events`` must form per-node prefixes of real events (``⊤``
    membership cannot be expressed through this constructor).

    Raises
    ------
    ValueError
        If the set is not prefix-closed on some node.
    """
    vec = np.zeros(execution.num_nodes, dtype=np.int64)
    counts = np.zeros(execution.num_nodes, dtype=np.int64)
    for node, idx in events:
        counts[node] += 1
        if idx > vec[node]:
            vec[node] = idx
    if not np.array_equal(vec, counts):
        raise ValueError("event set is not per-node prefix-closed")
    return Cut(execution, vec)
