"""Core contribution: cuts, the ``≪`` relation, and relation evaluators."""

from .axioms import (
    COMPOSITION_TABLE,
    MUTUALLY_EXCLUSIVE_WITH_CONVERSE,
    compose,
    converse_compatible,
)
from .context import AnalysisContext, CutCache
from .counting import NULL_COUNTER, ComparisonCounter
from .cuts import (
    Cut,
    CutQuadruple,
    cut_C1,
    cut_C2,
    cut_C3,
    cut_C4,
    cut_from_event_set,
    cut_intersection,
    cut_union,
    cuts_of,
    future_cut,
    ll,
    ll_form1,
    ll_form3,
    not_ll,
    not_ll_form2,
    not_ll_form4,
    past_cut,
    reference_future_cut_set,
    reference_past_set,
)
from .evaluator import ENGINES, SynchronizationAnalyzer
from .explain import Comparison, Explanation, explain
from .hierarchy import (
    BASE_IMPLICATIONS,
    base_dag,
    evaluate_all_pruned,
    family_dag,
    implies,
    maximal_true,
)
from .linear import LinearEvaluator, not_ll_restricted
from .naive import NaiveEvaluator
from .pairwise import IntervalSetMatrices, relation_matrix
from .polynomial import PolynomialEvaluator
from .relations import (
    BASE_RELATIONS,
    FAMILY32,
    Relation,
    RelationSpec,
    parse_spec,
    quantifier_eval,
)

__all__ = [
    "AnalysisContext",
    "CutCache",
    "ComparisonCounter",
    "NULL_COUNTER",
    "Cut",
    "CutQuadruple",
    "past_cut",
    "future_cut",
    "cut_C1",
    "cut_C2",
    "cut_C3",
    "cut_C4",
    "cuts_of",
    "cut_union",
    "cut_intersection",
    "cut_from_event_set",
    "ll",
    "not_ll",
    "ll_form1",
    "not_ll_form2",
    "ll_form3",
    "not_ll_form4",
    "reference_past_set",
    "reference_future_cut_set",
    "Relation",
    "RelationSpec",
    "BASE_RELATIONS",
    "FAMILY32",
    "parse_spec",
    "quantifier_eval",
    "NaiveEvaluator",
    "PolynomialEvaluator",
    "LinearEvaluator",
    "not_ll_restricted",
    "SynchronizationAnalyzer",
    "ENGINES",
    "BASE_IMPLICATIONS",
    "base_dag",
    "family_dag",
    "implies",
    "maximal_true",
    "evaluate_all_pruned",
    "compose",
    "COMPOSITION_TABLE",
    "MUTUALLY_EXCLUSIVE_WITH_CONVERSE",
    "converse_compatible",
    "IntervalSetMatrices",
    "relation_matrix",
    "explain",
    "Explanation",
    "Comparison",
]
