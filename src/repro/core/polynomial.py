"""Proxy-based polynomial evaluation — the prior-work baseline.

Before this paper, the relations of [11, 12] were evaluated with
``|N_X| × |N_Y|`` causality checks: quantifiers over X and Y collapse to
quantifiers over one extremal component event per node, because the
local executions are linear:

* a universally quantified ``x`` need only range over the per-node
  *greatest* events of X (everything else is causally below them);
* an existentially quantified ``x`` need only range over the per-node
  *least* events (witnesses can be weakened downwards);
* dually for ``y`` (universal → least, existential → greatest).

This engine implements exactly that reduction and is the baseline the
paper's abstract compares against: *"the evaluation of the
synchronization relations requires |N_X| × |N_Y| integer comparisons"*.
"""

from __future__ import annotations


from ..events.event import EventId
from ..events.poset import Execution
from ..nonatomic.event import NonatomicEvent
from ..nonatomic.proxies import ProxyDefinition, proxy_of
from .context import AnalysisContext
from .counting import NULL_COUNTER, ComparisonCounter
from .relations import Relation, RelationSpec, quantifier_eval

__all__ = ["PolynomialEvaluator"]

# Which extremal events each relation's quantifiers range over.
# "last" = per-node greatest component events, "first" = per-node least.
_X_DOMAIN: dict[Relation, str] = {
    Relation.R1: "last",
    Relation.R1P: "last",
    Relation.R2: "last",
    Relation.R2P: "last",
    Relation.R3: "first",
    Relation.R3P: "first",
    Relation.R4: "first",
    Relation.R4P: "first",
}
_Y_DOMAIN: dict[Relation, str] = {
    Relation.R1: "first",
    Relation.R1P: "first",
    Relation.R2: "last",
    Relation.R2P: "last",
    Relation.R3: "first",
    Relation.R3P: "first",
    Relation.R4: "last",
    Relation.R4P: "last",
}


class PolynomialEvaluator:
    """Per-node-extrema evaluator (``O(|N_X| · |N_Y|)`` per relation).

    Parameters as for :class:`repro.core.naive.NaiveEvaluator`
    (``execution`` may be an
    :class:`~repro.core.context.AnalysisContext`).
    """

    name = "polynomial"

    def __init__(
        self,
        execution: "Execution | AnalysisContext",
        counter: ComparisonCounter | None = None,
        proxy_definition: ProxyDefinition = ProxyDefinition.PER_NODE,
    ) -> None:
        self.context = AnalysisContext.of(execution)
        self.execution = self.context.execution
        self.counter = counter if counter is not None else NULL_COUNTER
        self.proxy_definition = proxy_definition

    # ------------------------------------------------------------------
    def _precedes(self, a: EventId, b: EventId) -> bool:
        self.counter.add(1, "test")
        return self.execution.precedes(a, b)

    @staticmethod
    def _domain(interval: NonatomicEvent, which: str) -> tuple[EventId, ...]:
        return interval.last_ids() if which == "last" else interval.first_ids()

    def evaluate(
        self, relation: Relation, x: NonatomicEvent, y: NonatomicEvent
    ) -> bool:
        """Evaluate ``R(X, Y)`` over per-node extremal events only."""
        xs = self._domain(x, _X_DOMAIN[relation])
        ys = self._domain(y, _Y_DOMAIN[relation])
        return quantifier_eval(self._precedes, relation, xs, ys)

    def evaluate_spec(
        self, spec: RelationSpec, x: NonatomicEvent, y: NonatomicEvent
    ) -> bool:
        """Evaluate a 32-family relation on the configured proxies."""
        px = proxy_of(x, spec.proxy_x, self.proxy_definition)
        py = proxy_of(y, spec.proxy_y, self.proxy_definition)
        return self.evaluate(spec.relation, px, py)
