"""The causality relations of Table 1 and the 32-relation family ``R``.

Table 1 (from [9], column 2) defines eight relations between event sets
X and Y using first-order quantifiers over the atomic causality ``≺``:

====  =========================  ==========================================
R1    ``∀x∈X ∀y∈Y: x ≺ y``       everything in X precedes everything in Y
R1'   ``∀y∈Y ∀x∈X: x ≺ y``       (same predicate, reversed quantifiers)
R2    ``∀x∈X ∃y∈Y: x ≺ y``       every x precedes some y
R2'   ``∃y∈Y ∀x∈X: x ≺ y``       some y follows all of X
R3    ``∃x∈X ∀y∈Y: x ≺ y``       some x precedes all of Y
R3'   ``∀y∈Y ∃x∈X: x ≺ y``       every y follows some x
R4    ``∃x∈X ∃y∈Y: x ≺ y``       some x precedes some y
R4'   ``∃y∈Y ∃x∈X: x ≺ y``       (same predicate, reversed quantifiers)
====  =========================  ==========================================

Note that R1 ≡ R1' and R4 ≡ R4' as predicates (swapping two quantifiers
of the same kind), while R2 ≢ R2' and R3 ≢ R3' on posets — the paper's
observation about the incomplete hierarchy of [9].

The 32-relation family ``R`` of [11, 12] applies each base relation to a
choice of *proxies*: ``r = R(X̂, Ŷ)`` with ``X̂ ∈ {L_X, U_X}`` and
``Ŷ ∈ {L_Y, U_Y}``.  :class:`RelationSpec` names one member of the
family, e.g. ``R2'(U, L)``; specs have a stable string syntax parsed by
:func:`parse_spec`.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field
from collections.abc import Callable, Iterable

from ..events.event import EventId
from ..nonatomic.proxies import Proxy

__all__ = [
    "Relation",
    "BASE_RELATIONS",
    "RelationSpec",
    "FAMILY32",
    "parse_spec",
    "quantifier_eval",
    "SubtestKind",
    "SubtestKey",
    "subtest_key",
    "SUBTEST_KEYS",
    "SUBTEST_COLUMNS",
]


class Relation(enum.Enum):
    """One of the eight base relations of Table 1."""

    R1 = "R1"
    R1P = "R1'"
    R2 = "R2"
    R2P = "R2'"
    R3 = "R3"
    R3P = "R3'"
    R4 = "R4"
    R4P = "R4'"

    @property
    def display(self) -> str:
        """The paper's notation, e.g. ``R2'``."""
        return self.value

    @property
    def quantifiers(self) -> str:
        """The quantifier prefix in binding order, e.g. ``"∃y∀x"``."""
        return {
            Relation.R1: "∀x∀y",
            Relation.R1P: "∀y∀x",
            Relation.R2: "∀x∃y",
            Relation.R2P: "∃y∀x",
            Relation.R3: "∃x∀y",
            Relation.R3P: "∀y∃x",
            Relation.R4: "∃x∃y",
            Relation.R4P: "∃y∃x",
        }[self]

    @property
    def is_universal_family(self) -> bool:
        """True for the relations evaluated as a conjunction of ``≪̸``
        tests (R1, R1', R2, R3' — the ``∏`` rows of Table 1)."""
        return self in (Relation.R1, Relation.R1P, Relation.R2, Relation.R3P)

    @property
    def synonym(self) -> "Relation | None":
        """The logically equivalent relation, if any (R1≡R1', R4≡R4')."""
        return {
            Relation.R1: Relation.R1P,
            Relation.R1P: Relation.R1,
            Relation.R4: Relation.R4P,
            Relation.R4P: Relation.R4,
        }.get(self)


#: The eight base relations, in Table 1 order.
BASE_RELATIONS: tuple[Relation, ...] = (
    Relation.R1,
    Relation.R1P,
    Relation.R2,
    Relation.R2P,
    Relation.R3,
    Relation.R3P,
    Relation.R4,
    Relation.R4P,
)


@dataclass(frozen=True, slots=True)
class RelationSpec:
    """One member of the 32-relation family ``R``: ``R(X̂, Ŷ)``.

    ``relation`` is the Table-1 base relation; ``proxy_x``/``proxy_y``
    select which proxy of X and Y it is applied to.  Specs order by
    their display string (stable, human-meaningful).
    """

    relation: Relation
    proxy_x: Proxy
    proxy_y: Proxy
    _hash: int = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        # specs are dict keys on every family-query hot path; the
        # generated hash would re-hash three enum members per lookup
        object.__setattr__(
            self, "_hash", hash((self.relation, self.proxy_x, self.proxy_y))
        )

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        return f"{self.relation.display}({self.proxy_x.value},{self.proxy_y.value})"

    def __lt__(self, other: "RelationSpec") -> bool:
        if not isinstance(other, RelationSpec):
            return NotImplemented
        return str(self) < str(other)

    @property
    def display(self) -> str:
        """Stable string form, e.g. ``"R2'(U,L)"``."""
        return str(self)


#: All 32 members of the family, ordered by (relation, proxy_x, proxy_y).
FAMILY32: tuple[RelationSpec, ...] = tuple(
    RelationSpec(rel, px, py)
    for rel in BASE_RELATIONS
    for px in (Proxy.L, Proxy.U)
    for py in (Proxy.L, Proxy.U)
)


_SPEC_RE = re.compile(
    r"^\s*(R[1-4]'?)\s*(?:\(\s*([LU])\s*,\s*([LU])\s*\))?\s*$"
)


def parse_spec(text: str) -> "Relation | RelationSpec":
    """Parse ``"R2'"`` into a :class:`Relation` or ``"R2'(U,L)"`` into a
    :class:`RelationSpec`.

    Raises
    ------
    ValueError
        On malformed input.
    """
    m = _SPEC_RE.match(text)
    if not m:
        raise ValueError(
            f"cannot parse relation spec {text!r}; expected e.g. \"R2'\" or "
            f"\"R2'(U,L)\""
        )
    rel = Relation(m.group(1))
    if m.group(2) is None:
        return rel
    return RelationSpec(rel, Proxy(m.group(2)), Proxy(m.group(3)))


class SubtestKind(enum.Enum):
    """The three vector-test shapes behind every Table-1 condition.

    Theorem 19/20's evaluation conditions all reduce to one comparison
    sweep of a Y-side row against an X-side row:

    * :attr:`FORALL_PAST` — ``∀i: T(⇓Ŷ)[i] ≥ lastX̂[i]`` (R1, R1', R2;
      ``lastX̂ = 0`` off ``N_X̂`` is neutral because cut timestamps are
      nonnegative);
    * :attr:`EXISTS_CUT` — ``∃i: T(⇓Ŷ)[i] ≥ T(⇑X̂)[i]`` (R2', R3, R4,
      R4') — the genuine cut-pair ``≪̸`` tests of Definition 7;
    * :attr:`FORALL_FUTURE` — ``∀i ∈ N_Ŷ: firstŶ[i] ≥ T(∩⇑X̂)[i]``
      (R3'; ``firstŶ = 0`` encodes "node not in ``N_Ŷ``" and is
      skipped).

    These are exactly the full-``|P|``-scan forms of the vectorised
    all-pairs kernel (:mod:`repro.core.pairwise`), so a verdict computed
    once for a subtest key answers *every* spec that canonicalises to
    that key (see :func:`subtest_key`).
    """

    FORALL_PAST = "forall-past"
    EXISTS_CUT = "exists-cut"
    FORALL_FUTURE = "forall-future"


#: A subtest key: ``(kind, (y_stat, Ŷ), (x_stat, X̂))`` where the stat
#: names select rows of :class:`~repro.core.cuts.CutStats` computed for
#: the L/U proxies of Y and X respectively.
SubtestKey = tuple[SubtestKind, tuple[str, str], tuple[str, str]]

# Proxy coincidences used to canonicalise *base* relations onto proxy
# operand rows (Section 2.5: proxies carry one component event per node):
#   C1(L_Y) = C1(Y)    C2(U_Y) = C2(Y)    first(L_Y) = first(Y)
#   C3(L_X) = C3(X)    C4(U_X) = C4(X)    last(U_X)  = last(X)
_CANON_Y = {"c1": "L", "c2": "U", "first": "L"}
_CANON_X = {"last": "U", "c3": "L", "c4": "U"}


def subtest_key(spec: "Relation | RelationSpec") -> SubtestKey:
    """The canonical ``≪`` subtest deciding ``spec`` (Theorem 19/20).

    Maps each of the 40 evaluable specs (8 base relations on the full
    intervals + the 32-member family on proxies) onto the identity of
    the one vector subtest whose verdict decides it.  The map is
    many-to-one three ways:

    * synonyms collapse (R1 ≡ R1', R4 ≡ R4');
    * base relations collapse onto family members through the proxy
      coincidences above (e.g. ``R2(X, Y) ≡ R2(U_X, U_Y)``), so the
      8 base relations introduce **zero** additional keys;
    * within one pair (X, Y) the whole 40-spec query surface costs at
      most 24 distinct verdicts — 12 of kind :attr:`SubtestKind.EXISTS_CUT`
      (the cut-pair ``≪`` evaluations proper, bounded by the 16 ordered
      cut pairs of Table 2) plus 12 extremal-row sweeps.

    This is the memo key of
    :class:`~repro.core.evaluator.SharedVerdictCache` and the
    spec-matrix memo of :class:`~repro.core.pairwise.IntervalSetMatrices`.
    """
    cached = _KEY_CACHE.get(spec)
    if cached is None:
        cached = _KEY_CACHE[spec] = _compute_subtest_key(spec)
    return cached


def _compute_subtest_key(spec: "Relation | RelationSpec") -> SubtestKey:
    if isinstance(spec, RelationSpec):
        rel = spec.relation
        px: "str | None" = spec.proxy_x.value
        py: "str | None" = spec.proxy_y.value
    else:
        rel, px, py = spec, None, None

    def yop(stat: str) -> tuple[str, str]:
        return (stat, py if py is not None else _CANON_Y[stat])

    def xop(stat: str) -> tuple[str, str]:
        return (stat, px if px is not None else _CANON_X[stat])

    if rel in (Relation.R1, Relation.R1P):
        return (SubtestKind.FORALL_PAST, yop("c1"), xop("last"))
    if rel is Relation.R2:
        return (SubtestKind.FORALL_PAST, yop("c2"), xop("last"))
    if rel is Relation.R2P:
        return (SubtestKind.EXISTS_CUT, yop("c2"), xop("c4"))
    if rel is Relation.R3:
        return (SubtestKind.EXISTS_CUT, yop("c1"), xop("c3"))
    if rel is Relation.R3P:
        return (SubtestKind.FORALL_FUTURE, yop("first"), xop("c3"))
    if rel in (Relation.R4, Relation.R4P):
        return (SubtestKind.EXISTS_CUT, yop("c2"), xop("c3"))
    raise ValueError(f"unknown relation: {rel!r}")  # pragma: no cover


#: spec -> subtest key memo (the key set is finite: 40 evaluable specs
#: plus whatever equal-but-distinct instances callers construct).
_KEY_CACHE: "dict[Relation | RelationSpec, SubtestKey]" = {}


#: The distinct subtest keys across all 40 evaluable specs (24 of them).
SUBTEST_KEYS: tuple[SubtestKey, ...] = tuple(
    dict.fromkeys(
        [subtest_key(spec) for spec in FAMILY32]
        + [subtest_key(rel) for rel in BASE_RELATIONS]
    )
)

#: The vectorized subtest table: each :data:`SubtestKey` → its fixed
#: column in the ``(pairs, 24)`` verdict matrix of the batched family
#: kernel (:func:`repro.core.family.verdict_matrix`).  Column ``j``
#: answers ``SUBTEST_KEYS[j]``; the formula applied to that column is
#: determined by the key itself — with Y-side operand row ``y`` and
#: X-side operand row ``x`` selected by the key's ``(stat, proxy)``
#: pairs:
#:
#: * :attr:`SubtestKind.FORALL_PAST`   → ``all(y ≥ x)``
#: * :attr:`SubtestKind.EXISTS_CUT`    → ``any(y ≥ x)``
#: * :attr:`SubtestKind.FORALL_FUTURE` → ``all((y == 0) | (y ≥ x))``
#:
#: This ordering is a stable contract: verdict rows cached by
#: :class:`~repro.core.evaluator.SharedVerdictCache` are tuples indexed
#: by these columns.
SUBTEST_COLUMNS: dict[SubtestKey, int] = {
    key: j for j, key in enumerate(SUBTEST_KEYS)
}


def quantifier_eval(
    precedes: Callable[[EventId, EventId], bool],
    relation: Relation,
    xs: Iterable[EventId],
    ys: Iterable[EventId],
) -> bool:
    """Evaluate a base relation directly from its quantifier form.

    This is the ground-truth semantics (column 2 of Table 1) used by the
    naive engine and by every equivalence test.  ``O(|xs| · |ys|)``
    precedence checks in the worst case.

    Empty domains follow first-order convention: a universally
    quantified empty domain is vacuously true, an existentially
    quantified one false.  (Nonatomic events are non-empty by
    construction, so this only matters for direct calls.)
    """
    xs = tuple(xs)
    ys = tuple(ys)
    if relation in (Relation.R1, Relation.R1P):
        return all(precedes(x, y) for x in xs for y in ys)
    if relation is Relation.R2:
        return all(any(precedes(x, y) for y in ys) for x in xs)
    if relation is Relation.R2P:
        return any(all(precedes(x, y) for x in xs) for y in ys)
    if relation is Relation.R3:
        return any(all(precedes(x, y) for y in ys) for x in xs)
    if relation is Relation.R3P:
        return all(any(precedes(x, y) for x in xs) for y in ys)
    if relation in (Relation.R4, Relation.R4P):
        return any(precedes(x, y) for x in xs for y in ys)
    raise ValueError(f"unknown relation: {relation!r}")  # pragma: no cover
