"""Operation counters for reproducing the paper's complexity claims.

Theorems 19 and 20 are statements about *integer comparison counts*, not
wall-clock time, so the evaluators are instrumented: every causality
check (naive/polynomial engines) and every cut-timestamp comparison
(linear engine) increments a :class:`ComparisonCounter`.  Benchmarks and
tests assert the measured counts against the theorems' bounds exactly.
"""

from __future__ import annotations


__all__ = ["ComparisonCounter", "NULL_COUNTER"]


class ComparisonCounter:
    """Counts integer comparisons, optionally per category.

    Categories let the benchmarks separate one-time *setup* comparisons
    (building cut timestamps, Section 2.3) from per-query *test*
    comparisons (Theorem 20).
    """

    __slots__ = ("total", "by_category")

    def __init__(self) -> None:
        self.total: int = 0
        self.by_category: dict[str, int] = {}

    def add(self, n: int = 1, category: str | None = None) -> None:
        """Record ``n`` comparisons (optionally under ``category``)."""
        self.total += n
        if category is not None:
            self.by_category[category] = self.by_category.get(category, 0) + n

    def reset(self) -> None:
        """Zero all counts."""
        self.total = 0
        self.by_category.clear()

    def snapshot(self) -> int:
        """Current total, for delta measurements."""
        return self.total

    def __int__(self) -> int:
        return self.total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ComparisonCounter(total={self.total}, {self.by_category})"


class _NullCounter(ComparisonCounter):
    """A counter that ignores everything (zero-overhead default)."""

    __slots__ = ()

    def add(self, n: int = 1, category: str | None = None) -> None:  # noqa: D102
        pass


#: Shared do-nothing counter used when instrumentation is off.
NULL_COUNTER = _NullCounter()
