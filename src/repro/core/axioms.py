"""An axiom system on the relations (after [13]).

The companion paper [13] ("Causality between nonatomic poset events in
distributed computations") develops an axiom system over the relation
family.  This module implements the machine-checkable core — the laws
that govern how relations *combine* — and the test suite verifies every
law on randomly generated executions:

* **composition** (:func:`compose`): the strongest base relation
  guaranteed between X and Z given ``a(X, Y)`` and ``b(Y, Z)``, for
  pairwise-disjoint non-empty X, Y, Z.  E.g. ``R2 ∘ R1 = R1`` (each x
  reaches some y, and every z is above every y), while ``R4 ∘ R4``
  guarantees nothing;
* **asymmetry** (:data:`MUTUALLY_EXCLUSIVE_WITH_CONVERSE`): which
  relations can never hold in both directions simultaneously.  For
  example ``R2(X, Y) ∧ R2(Y, X)`` would build an unbounded ascending
  chain in a finite poset; ``R4`` both ways is perfectly possible
  (different witness pairs);
* the synonym and implication laws re-exported from
  :mod:`repro.core.hierarchy`.

Derivations (sketch).  Write each left relation's guarantee about Y:
R1 — all y above all x; R2' — some ``y*`` above all x; R2 — each x
below some ``y_x``; R3 — some ``x*`` below all y; R3' — each y above
some ``x_y``; R4 — some ``x' ≺ y'``.  Chain it with the right
relation's guarantee about Y → Z and read off the strongest X → Z
quantifier shape; when the two guarantees cannot be linked through a
shared y (e.g. R2' provides an *upper* witness while R3 consumes a
*lower* one), no relation is guaranteed and :func:`compose` returns
``None``.
"""

from __future__ import annotations


from .relations import Relation

__all__ = [
    "compose",
    "COMPOSITION_TABLE",
    "MUTUALLY_EXCLUSIVE_WITH_CONVERSE",
    "converse_compatible",
]


def _canon(rel: Relation) -> Relation:
    """Collapse the synonym pairs onto R1 / R4."""
    return {Relation.R1P: Relation.R1, Relation.R4P: Relation.R4}.get(rel, rel)


# Strongest guaranteed composition a(X,Y) ∧ b(Y,Z) ⟹ table[a][b](X,Z),
# for pairwise-disjoint, non-empty X, Y, Z.  None = nothing guaranteed.
_R = Relation
COMPOSITION_TABLE: dict[tuple[Relation, Relation], Relation | None] = {
    (_R.R1, _R.R1): _R.R1,
    (_R.R1, _R.R2P): _R.R2P,
    (_R.R1, _R.R2): _R.R2P,
    (_R.R1, _R.R3): _R.R1,
    (_R.R1, _R.R3P): _R.R1,
    (_R.R1, _R.R4): _R.R2P,
    (_R.R2P, _R.R1): _R.R1,
    (_R.R2P, _R.R2P): _R.R2P,
    (_R.R2P, _R.R2): _R.R2P,
    (_R.R2P, _R.R3): None,
    (_R.R2P, _R.R3P): None,
    (_R.R2P, _R.R4): None,
    (_R.R2, _R.R1): _R.R1,
    (_R.R2, _R.R2P): _R.R2P,
    (_R.R2, _R.R2): _R.R2,
    (_R.R2, _R.R3): None,
    (_R.R2, _R.R3P): None,
    (_R.R2, _R.R4): None,
    (_R.R3, _R.R1): _R.R3,
    (_R.R3, _R.R2P): _R.R4,
    (_R.R3, _R.R2): _R.R4,
    (_R.R3, _R.R3): _R.R3,
    (_R.R3, _R.R3P): _R.R3,
    (_R.R3, _R.R4): _R.R4,
    # R3' gives some x₀ below a fixed y₀, and R1 puts y₀ below *every*
    # z — so the single witness x₀ already yields R3, not just R3'.
    (_R.R3P, _R.R1): _R.R3,
    (_R.R3P, _R.R2P): _R.R4,
    (_R.R3P, _R.R2): _R.R4,
    (_R.R3P, _R.R3): _R.R3,
    (_R.R3P, _R.R3P): _R.R3P,
    (_R.R3P, _R.R4): _R.R4,
    (_R.R4, _R.R1): _R.R3,
    (_R.R4, _R.R2P): _R.R4,
    (_R.R4, _R.R2): _R.R4,
    (_R.R4, _R.R3): None,
    (_R.R4, _R.R3P): None,
    (_R.R4, _R.R4): None,
}


def compose(a: Relation, b: Relation) -> Relation | None:
    """The strongest relation guaranteed by ``a(X, Y) ∧ b(Y, Z)``.

    Valid for pairwise-disjoint, non-empty X, Y, Z; synonym inputs
    (R1'/R4') are canonicalised.  Returns ``None`` when no relation is
    guaranteed (the guarantees cannot be chained through a shared
    witness in Y).

    Every entry is verified *sound* by the property suite; the
    ``R1``-row and ``·∘R1``-column entries are additionally verified
    maximal (no strictly stronger relation is always implied).
    """
    return COMPOSITION_TABLE[(_canon(a), _canon(b))]


#: Relations r with ``r(X, Y) ⟹ ¬r(Y, X)`` for disjoint non-empty X, Y.
#: R1: a cycle through all pairs.  R2'/R3: the two global witnesses
#: would dominate each other.  R2/R3': an alternating strictly
#: ascending chain, impossible in a finite poset.  R4/R4' are *not*
#: asymmetric: different witness pairs may point both ways.
MUTUALLY_EXCLUSIVE_WITH_CONVERSE: frozenset[Relation] = frozenset(
    {
        Relation.R1,
        Relation.R1P,
        Relation.R2,
        Relation.R2P,
        Relation.R3,
        Relation.R3P,
    }
)


def converse_compatible(rel: Relation) -> bool:
    """Can ``rel(X, Y)`` and ``rel(Y, X)`` hold simultaneously?"""
    return rel not in MUTUALLY_EXCLUSIVE_WITH_CONVERSE
