"""Shared analysis context: the one place timestamps and cuts are built.

The paper's amortization argument (Key Idea 1) is that relation tests
collapse to cheap vector comparisons *once the timestamp and cut
structure is established*.  Before this module, that structure was
scattered: every evaluator re-derived cut quadruples per call, each
application kept private copies of per-interval vectors, and equal
intervals constructed twice paid the fold twice.

:class:`AnalysisContext` centralises the setup state for one
:class:`~repro.events.poset.Execution`:

* a :class:`CutCache` memoizing each nonatomic event's Table-2 cuts and
  extremal-index vectors **keyed by interval identity** (the component
  id set), so distinct-but-equal interval objects share one fold;
* explicit invalidation on trace growth — the cache keys its validity
  on :attr:`Execution.version <repro.events.poset.Execution.version>`,
  which :meth:`Execution.extend` bumps, so stale future-side vectors
  can never be served;
* a factory for :class:`~repro.core.pairwise.IntervalSetMatrices`
  stacks that draws cut vectors from the cache instead of re-folding.

All three relation engines, the high-level
:class:`~repro.core.evaluator.SynchronizationAnalyzer`, the online
monitor, the application verifiers and the CLI consume this layer;
:meth:`AnalysisContext.of` hands out one shared context per execution
so independent consumers amortize each other's setup work.
"""

from __future__ import annotations

# repro: dtype-strict

import weakref
from collections.abc import Iterable, Sequence
from typing import TYPE_CHECKING

import numpy as np

from ..backends.base import CausalityBackend, make_backend
from ..events.event import EventId
from ..events.poset import Execution
from ..nonatomic.event import NonatomicEvent
from ..nonatomic.proxies import Proxy, ProxyDefinition, proxy_of
from .cuts import Cut, CutQuadruple, CutStats
from .family import operand_tensor
from .versioning import versioned_state

if TYPE_CHECKING:
    from ..events.trace import Trace
    from .evaluator import SharedVerdictCache
    from .pairwise import IntervalSetMatrices

__all__ = ["AnalysisContext", "CutCache"]

#: Cache key: the interval's component id set (its mathematical identity).
_IntervalKey = frozenset[EventId]


@versioned_state(
    version="_version",
    caches=("_cuts", "_extremal"),
    guards=("invalidate", "_fresh"),
)
class CutCache:
    """Memoized cut quadruples and extremal vectors for one execution.

    Entries are keyed by the interval's component id set, so two
    :class:`~repro.nonatomic.event.NonatomicEvent` objects denoting the
    same set of atomic events share one cut fold — the cross-object
    amortization the per-instance ``NonatomicEvent.cache`` cannot give.

    The cache records the execution :attr:`~Execution.version` it was
    filled against and drops every entry the moment the execution has
    grown (:meth:`Execution.extend`), because future-side cuts (C3/C4)
    and the extremal encodings change when the future does.

    Attributes
    ----------
    hits, misses:
        Lookup counters.  ``hits`` counts cut requests served without a
        fold; benchmarks and the acceptance tests assert on them.
    """

    __slots__ = ("_execution", "_backend", "_version", "_cuts", "_extremal",
                 "hits", "misses")

    def __init__(
        self,
        execution: Execution,
        backend: "CausalityBackend | None" = None,
    ) -> None:
        self._execution = execution
        self._backend = (
            backend if backend is not None else make_backend(None, execution)
        )
        self._version = execution.version
        self._cuts: dict[tuple[_IntervalKey, str], Cut] = {}
        self._extremal: dict[_IntervalKey, tuple[np.ndarray, np.ndarray]] = {}
        self.hits = 0
        self.misses = 0

    @property
    def execution(self) -> Execution:
        """The execution the cached structures belong to."""
        return self._execution

    @property
    def backend(self) -> CausalityBackend:
        """The causality backend filling cache misses."""
        return self._backend

    def __len__(self) -> int:
        return len(self._cuts)

    def invalidate(self) -> None:
        """Drop every entry and re-arm against the current version."""
        self._cuts.clear()
        self._extremal.clear()
        self._backend.invalidate()
        self._version = self._execution.version

    def _fresh(self) -> None:
        if self._execution.version != self._version:
            self.invalidate()

    def _check_interval(self, x: NonatomicEvent) -> None:
        if x.execution is not self._execution:
            raise ValueError("interval does not belong to this context's execution")

    # ------------------------------------------------------------------
    # cuts
    # ------------------------------------------------------------------
    def cut(self, x: NonatomicEvent, which: str) -> Cut:
        """One Table-2 cut of ``x`` (``which`` in C1/C2/C3/C4), memoized.

        Only the requested cut is computed: past-only consumers asking
        for C1/C2 never force the reverse clock pass that C3/C4 need.
        """
        self._check_interval(x)
        self._fresh()
        key = (x.ids, which)
        cached = self._cuts.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        result = Cut._trusted(self._execution, self._backend.cut_vector(x, which))
        self._cuts[key] = result
        return result

    def quadruple(self, x: NonatomicEvent) -> CutQuadruple:
        """All four Table-2 cuts of ``x`` (computed once — Key Idea 1)."""
        return CutQuadruple(
            self.cut(x, "C1"), self.cut(x, "C2"),
            self.cut(x, "C3"), self.cut(x, "C4"),
        )

    # ------------------------------------------------------------------
    # extremal index vectors
    # ------------------------------------------------------------------
    def extremal(self, x: NonatomicEvent) -> tuple[np.ndarray, np.ndarray]:
        """``(first, last)`` per-node extremal index vectors of ``x``.

        Length-``|P|`` read-only int64 arrays with 0 encoding "node not
        in ``N_X``" — the neutral encoding the vectorised pairwise
        kernel consumes.
        """
        self._check_interval(x)
        self._fresh()
        key = x.ids
        cached = self._extremal.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        num_nodes = self._execution.num_nodes
        first = np.zeros(num_nodes, dtype=np.int64)
        last = np.zeros(num_nodes, dtype=np.int64)
        for node in x.node_set:
            first[node] = x.first_at(node)
            last[node] = x.last_at(node)
        first.setflags(write=False)
        last.setflags(write=False)
        self._extremal[key] = (first, last)
        return first, last

    # ------------------------------------------------------------------
    # columnar batch fill
    # ------------------------------------------------------------------
    def stats(self, intervals: Sequence[NonatomicEvent]) -> CutStats:
        """Stacked cut/extremal matrices for ``intervals``, rows aligned
        with the input order.

        Rows already memoized (all four cuts plus the extremal pair)
        are copied out of the cache; every *missing* interval is filled
        by one batched backend pass
        (:meth:`~repro.backends.base.CausalityBackend.cut_stats` — for
        the vector backend, gathers and segmented reductions over the
        ``(|E|, |P|)`` clock matrices, no per-interval fold loop) and
        deposited, so later scalar queries hit.  This is the construction path of
        :class:`~repro.core.pairwise.IntervalSetMatrices` and the batch
        planner.
        """
        self._fresh()
        k = len(intervals)
        num_nodes = self._execution.num_nodes
        out = {
            name: np.empty((k, num_nodes), dtype=np.int64)
            for name in ("c1", "c2", "c3", "c4", "first", "last")
        }
        missing: list[int] = []
        dups: list[tuple[int, int]] = []
        filled: dict[_IntervalKey, int] = {}
        for i, x in enumerate(intervals):
            self._check_interval(x)
            key = x.ids
            dup = filled.get(key)
            if dup is not None:
                dups.append((i, dup))
                self.hits += 1
                continue
            filled[key] = i
            extremal = self._extremal.get(key)
            c1 = self._cuts.get((key, "C1"))
            c2 = self._cuts.get((key, "C2"))
            c3 = self._cuts.get((key, "C3"))
            c4 = self._cuts.get((key, "C4"))
            if extremal is None or None in (c1, c2, c3, c4):
                missing.append(i)
                continue
            self.hits += 1
            out["c1"][i] = c1.vector
            out["c2"][i] = c2.vector
            out["c3"][i] = c3.vector
            out["c4"][i] = c4.vector
            out["first"][i], out["last"][i] = extremal
        if missing:
            cold = self._backend.cut_stats([intervals[i] for i in missing])
            rows = np.asarray(missing, dtype=np.intp)
            for name in out:
                out[name][rows] = getattr(cold, name)
            ex = self._execution
            for j, i in enumerate(missing):
                self.misses += 1
                key = intervals[i].ids
                self._cuts[(key, "C1")] = Cut._trusted(ex, cold.c1[j])
                self._cuts[(key, "C2")] = Cut._trusted(ex, cold.c2[j])
                self._cuts[(key, "C3")] = Cut._trusted(ex, cold.c3[j])
                self._cuts[(key, "C4")] = Cut._trusted(ex, cold.c4[j])
                self._extremal[key] = (cold.first[j], cold.last[j])
        for i, dup in dups:
            for name in out:
                out[name][i] = out[name][dup]
        for name in out:
            out[name].setflags(write=False)
        return CutStats(**out)

    def fill_batch(self, intervals: Sequence[NonatomicEvent]) -> None:
        """Memoize cuts and extremal vectors for ``intervals`` in one
        vectorized pass (a :meth:`stats` call for its deposit effect)."""
        self.stats(intervals)

    def family_operands(
        self,
        intervals: Sequence[NonatomicEvent],
        proxy_definition: ProxyDefinition = ProxyDefinition.PER_NODE,
    ) -> np.ndarray:
        """The ``(k, 12, P)`` family operand tensor for ``intervals``.

        Interleaves every interval's ``(L, U)`` proxies and pays **one**
        batched :meth:`stats` fill for all ``2k`` of them (cold rows go
        through the backend's columnar
        :meth:`~repro.backends.base.CausalityBackend.cut_stats` in a
        single call), then reshapes into the contiguous operand layout
        the batched family kernel
        (:func:`repro.core.family.verdict_matrix`) gathers from.  The
        proxy cuts land in this cache, so later scalar queries hit.
        """
        proxies: list[NonatomicEvent] = []
        for x in intervals:
            proxies.append(proxy_of(x, Proxy.L, proxy_definition))
            proxies.append(proxy_of(x, Proxy.U, proxy_definition))
        return operand_tensor(self.stats(proxies))


#: One shared context per live execution (weak: contexts die with them).
_SHARED: "weakref.WeakKeyDictionary[Execution, AnalysisContext]" = (
    weakref.WeakKeyDictionary()
)


# ``_verdicts`` is deliberately untracked: each SharedVerdictCache entry
# freshness-checks itself against the execution version on every read.
@versioned_state(version="_mats_version", caches=("_mats",), guards=())
class AnalysisContext:
    """Shared evaluation substrate for one execution.

    Bundles the execution (whose clock structures are built lazily and
    extended incrementally) with the :class:`CutCache` every consumer
    draws from.  Construct one per execution — or let
    :meth:`AnalysisContext.of` hand out the process-wide shared
    instance — and pass it wherever an
    :class:`~repro.events.poset.Execution` used to go: the relation
    engines, :class:`~repro.core.evaluator.SynchronizationAnalyzer`,
    the predicate detectors and the application verifiers all accept
    either.
    """

    __slots__ = ("_execution", "_backend", "_cut_cache", "_mats",
                 "_mats_version", "_verdicts", "__weakref__")

    #: bound on memoized interval-set stacks before the memo is reset
    _MATS_LIMIT = 64

    def __init__(
        self,
        execution: Execution,
        backend: "str | CausalityBackend | None" = None,
    ) -> None:
        if isinstance(execution, AnalysisContext):  # idempotent wrap
            execution = execution.execution
        self._execution = execution
        if isinstance(backend, CausalityBackend):
            if backend.execution is not execution:
                raise ValueError("backend belongs to a different execution")
            self._backend = backend
        else:
            self._backend = make_backend(backend, execution)
        self._cut_cache = CutCache(execution, self._backend)
        self._mats: dict[tuple[_IntervalKey, ...], object] = {}
        self._mats_version = execution.version
        self._verdicts: dict[ProxyDefinition, SharedVerdictCache] = {}

    @classmethod
    def of(cls, execution: "Execution | AnalysisContext") -> "AnalysisContext":
        """The shared context of ``execution`` (created on first use).

        Every consumer resolving its context through here shares one
        cut cache per execution — the repo-wide amortization point.
        """
        if isinstance(execution, AnalysisContext):
            return execution
        ctx = _SHARED.get(execution)
        if ctx is None:
            ctx = _SHARED[execution] = cls(execution)
        return ctx

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def execution(self) -> Execution:
        """The analysed execution."""
        return self._execution

    @property
    def backend(self) -> CausalityBackend:
        """The causality backend answering this context's queries."""
        return self._backend

    @property
    def backend_name(self) -> str:
        """Registry name of the active backend (``vector``/…)."""
        return self._backend.name

    @property
    def cut_cache(self) -> CutCache:
        """The shared per-interval cut/extremal cache."""
        return self._cut_cache

    @property
    def cache_hits(self) -> int:
        """Cut-cache hits (requests served without a fold)."""
        return self._cut_cache.hits

    @property
    def cache_misses(self) -> int:
        """Cut-cache misses (requests that paid the fold)."""
        return self._cut_cache.misses

    # ------------------------------------------------------------------
    # interval helpers
    # ------------------------------------------------------------------
    def interval(
        self, ids: Iterable[EventId], name: str | None = None
    ) -> NonatomicEvent:
        """Create a nonatomic event over this context's execution."""
        return NonatomicEvent(self._execution, ids, name=name)

    def cuts(self, x: NonatomicEvent) -> CutQuadruple:
        """The memoized cut quadruple of ``x``."""
        return self._cut_cache.quadruple(x)

    def cut(self, x: NonatomicEvent, which: str) -> Cut:
        """One memoized Table-2 cut of ``x`` (``"C1"``..``"C4"``)."""
        return self._cut_cache.cut(x, which)

    def extremal(self, x: NonatomicEvent) -> tuple[np.ndarray, np.ndarray]:
        """Memoized ``(first, last)`` extremal index vectors of ``x``."""
        return self._cut_cache.extremal(x)

    # ------------------------------------------------------------------
    # pairwise causality (backend-routed)
    # ------------------------------------------------------------------
    def precedes(self, a: EventId, b: EventId) -> bool:
        """``a ≺ b`` for real events, answered by the active backend."""
        return self._backend.precedes(a, b)

    def concurrent(self, a: EventId, b: EventId) -> bool:
        """``a ∥ b`` for real events, answered by the active backend."""
        return self._backend.concurrent(a, b)

    # ------------------------------------------------------------------
    # batched structures
    # ------------------------------------------------------------------
    def matrices(self, intervals: Sequence[NonatomicEvent]) -> IntervalSetMatrices:
        """An :class:`~repro.core.pairwise.IntervalSetMatrices` stack
        over ``intervals`` whose rows are drawn from the cut cache
        (folds already paid are not repeated).

        Stacks are memoized by the sequence of interval identities:
        repeated batches over the same interval set — the planner's
        steady state — reuse both the stacked vectors and any relation
        matrices already broadcast from them.  The memo is dropped when
        the execution grows (and bounded, resetting past
        ``_MATS_LIMIT`` entries).
        """
        from .pairwise import IntervalSetMatrices

        if self._mats_version != self._execution.version:
            self._mats.clear()
            self._mats_version = self._execution.version
        key = tuple(iv.ids for iv in intervals)
        mats = self._mats.get(key)
        if mats is None:
            mats = IntervalSetMatrices(intervals, cache=self._cut_cache)
            if len(self._mats) >= self._MATS_LIMIT:
                self._mats.clear()
            self._mats[key] = mats
        return mats

    def verdict_cache(self, proxy_definition: ProxyDefinition) -> SharedVerdictCache:
        """The shared ``≪``-subtest verdict cache for one proxy
        definition (created on first use).

        One :class:`~repro.core.evaluator.SharedVerdictCache` per
        (context, proxy definition): every analyzer routing a
        whole-family query through here amortizes the same ≤24 subtest
        verdicts per ordered interval pair.
        """
        from .evaluator import SharedVerdictCache

        vc = self._verdicts.get(proxy_definition)
        if vc is None:
            vc = self._verdicts[proxy_definition] = SharedVerdictCache(
                self, proxy_definition
            )
        return vc

    def family_query_stats(self) -> dict[str, int]:
        """Aggregated family verdict-cache counters (all proxy defs).

        ``pairs`` — ordered pairs with a memoized 24-subtest verdict
        row; ``fills`` — batched kernel invocations; ``evals`` /
        ``cut_pair_evals`` — subtest evaluations performed (total /
        cut-pair ``≪`` subset); ``hits`` — verdict-row reads served
        from the cache.  All zero until a family query runs; the CLI
        run-stats line reads this.
        """
        out = {
            "pairs": 0, "fills": 0, "evals": 0,
            "cut_pair_evals": 0, "hits": 0,
        }
        for vc in self._verdicts.values():
            out["pairs"] += vc.pairs_cached
            out["fills"] += vc.fills
            out["evals"] += vc.evals
            out["cut_pair_evals"] += vc.cut_pair_evals
            out["hits"] += vc.hits
        return out

    # ------------------------------------------------------------------
    # growth
    # ------------------------------------------------------------------
    def extend(self, trace: Trace) -> "AnalysisContext":
        """Grow the underlying execution (append-only) and invalidate.

        Delegates to :meth:`Execution.extend`; the version bump makes
        the cut cache drop every memoized vector, so post-growth
        queries can never see pre-growth future cuts.
        """
        self._execution.extend(trace)
        self._cut_cache.invalidate()  # also re-arms the backend
        self._mats.clear()
        self._mats_version = self._execution.version
        for vc in self._verdicts.values():
            vc.invalidate()
        return self

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AnalysisContext({self._execution!r}, cached={len(self._cut_cache)}, "
            f"hits={self._cut_cache.hits}, misses={self._cut_cache.misses})"
        )
