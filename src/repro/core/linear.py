"""Linear-time relation evaluation — the paper's contribution.

Implements the evaluation conditions of Table 1 (third column) together
with Key Idea 2 / Theorem 19: a test ``≪̸(↓Y, X↑)`` between a past cut
of Y and a future cut of X is decided by comparing cut-timestamp
components **only at the nodes of** ``N_X`` (or, equivalently, only at
``N_Y``), because

* the surface events of ``X↑`` at nodes of ``N_X`` are the causally
  earliest events of ``S(X↑)``, and
* the surface events of ``↓Y`` at nodes of ``N_Y`` are the causally
  latest events of ``S(↓Y)``,

so any violation of ``≪`` must already be visible there.  Concretely,
with cut vectors ``v = T(↓Y)`` and ``w = T(X↑)`` (and ``w ≥ 1``
componentwise, which holds for every future cut):

    ``≪̸(↓Y, X↑)  ⟺  ∃ i ∈ N_X: v[i] ≥ w[i]  ⟺  ∃ i ∈ N_Y: v[i] ≥ w[i]``

The per-relation evaluation conditions then collapse to:

========  ================================================  =============
Relation  Vector condition                                  Comparisons
========  ================================================  =============
R1, R1'   ``∀i ∈ N_X: T(∩⇓Y)[i] ≥ lastX[i]``  *or*          min(|N_X|,|N_Y|)
          ``∀i ∈ N_Y: firstY[i] ≥ T(∪⇑X)[i]``
R2        ``∀i ∈ N_X: T(∪⇓Y)[i] ≥ lastX[i]``                |N_X|
R2'       ``∃i ∈ N_Y: T(∪⇓Y)[i] ≥ T(∪⇑X)[i]``               |N_Y|
R3        ``∃i ∈ N_X: T(∩⇓Y)[i] ≥ T(∩⇑X)[i]``               |N_X|
R3'       ``∀i ∈ N_Y: firstY[i] ≥ T(∩⇑X)[i]``               |N_Y|
R4, R4'   ``∃i ∈ S:   T(∪⇓Y)[i] ≥ T(∩⇑X)[i]``               min(|N_X|,|N_Y|)
========  ================================================  =============

where ``S`` is the smaller of ``N_X``/``N_Y``, ``lastX[i]`` is the local
index of X's greatest component event at node ``i`` and ``firstY[i]``
that of Y's least component event.  The universal rows use the paper's
refinement that only the per-node extremal events of X (resp. Y) need
individual ``≪̸`` tests, each a single comparison at that node.

**Deviation from Theorem 20.**  The paper places R2' and R3 in the
``min(|N_X|, |N_Y|)`` class.  This reproduction found that the
restricted scan is only sound on the side whose cut surface is
*anchored* at that side's own component events:

* the past cut ``∪⇓Y`` (and every ``↓y``) satisfies
  ``T[i] ≥ index(y_last(i))`` at each ``i ∈ N_Y`` — scanning ``N_Y``
  is sound whenever the past cut is union-like;
* the future cut ``∩⇑X`` (and every ``x↑``) satisfies
  ``T[i] ≤ index(x_first(i))`` at each ``i ∈ N_X`` — scanning ``N_X``
  is sound whenever the future cut is intersection-like.

``R2'`` pairs ``∪⇓Y`` with the *union* future cut ``∪⇑X`` (unanchored
at ``N_X``), and ``R3`` pairs ``∩⇑X`` with the *intersection* past cut
``∩⇓Y`` (unanchored at ``N_Y``); in both cases the opposite-side scan
admits concrete counterexamples (see
``tests/test_theorem20_deviation.py``), so this engine scans the sound
side only: ``|N_Y|`` for R2' and ``|N_X|`` for R3 — still linear, just
not always the smaller of the two.  R4 pairs two anchored cuts and
R1/R1' decompose into per-event tests with anchored singleton cuts, so
their ``min`` claims stand.

All conditions are exact for disjoint intervals (``X ∩ Y = ∅``); see
DESIGN.md §2 for the equality caveat the paper glosses in Section 2.2.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from ..events.poset import Execution
from ..nonatomic.event import NonatomicEvent
from ..nonatomic.proxies import ProxyDefinition, proxy_of
from .context import AnalysisContext
from .counting import NULL_COUNTER, ComparisonCounter
from .cuts import Cut
from .relations import Relation, RelationSpec

__all__ = ["LinearEvaluator", "not_ll_restricted"]


def not_ll_restricted(
    past: Cut,
    future: Cut,
    nodes: Iterable[int],
    counter: ComparisonCounter = NULL_COUNTER,
) -> bool:
    """Theorem 19's restricted ``≪̸`` test.

    Decides ``≪̸(past, future)`` by scanning only ``nodes`` (which must
    be a sound witness set: ``N_X``, ``N_Y``, or any superset of one of
    them — soundness is Key Idea 2, property-tested in the suite).
    ``future`` must be a future cut (componentwise ``>= 1``), which is
    what makes the ``v[i] >= 1`` guard of Definition 7 implicit.
    """
    v = past.vector
    w = future.vector
    for i in nodes:
        counter.add(1, "test")
        if v[i] >= w[i]:
            return True
    return False


class LinearEvaluator:
    """The paper's linear-time evaluator (Theorems 19 and 20).

    Parameters
    ----------
    execution:
        The analysed execution, or an
        :class:`~repro.core.context.AnalysisContext` to share one cut
        cache with other consumers.  A bare execution resolves to its
        shared context (:meth:`AnalysisContext.of`); the evaluator
        itself is a stateless strategy over that context.
    counter:
        Optional :class:`ComparisonCounter`.  Only *query-time*
        comparisons are recorded under category ``"test"``; the
        one-time cut construction (Section 2.3) is vectorised and
        accounted separately by the setup benchmarks.
    proxy_definition:
        Proxy definition used by :meth:`evaluate_spec`.
    node_restriction:
        If True (default, Key Idea 2), ``≪̸`` tests scan only
        ``min(N_X, N_Y)``; if False, they scan all ``|P|`` nodes — the
        ablation baseline A-2 in DESIGN.md.
    """

    name = "linear"

    def __init__(
        self,
        execution: "Execution | AnalysisContext",
        counter: ComparisonCounter | None = None,
        proxy_definition: ProxyDefinition = ProxyDefinition.PER_NODE,
        node_restriction: bool = True,
    ) -> None:
        self.context = AnalysisContext.of(execution)
        self.execution = self.context.execution
        self.counter = counter if counter is not None else NULL_COUNTER
        self.proxy_definition = proxy_definition
        self.node_restriction = node_restriction
        #: Number of ``≪̸`` decision-procedure invocations performed:
        #: each singleton extremal-event test of a universal row and
        #: each restricted cut-pair scan of an existential row counts
        #: as one.  Kept separate from :attr:`counter` (which records
        #: integer *comparisons* and backs the Theorem-20 bound tests);
        #: benchmarks diff this against
        #: :attr:`~repro.core.evaluator.SharedVerdictCache.evals`.
        self.ll_tests = 0

    # ------------------------------------------------------------------
    # the three test shapes
    # ------------------------------------------------------------------
    def _scan_nodes(
        self,
        x: NonatomicEvent,
        y: NonatomicEvent,
        anchored_x: bool,
        anchored_y: bool,
    ) -> Sequence[int]:
        """Witness node set for a single ``≪̸`` test.

        ``anchored_x``/``anchored_y`` say which sides' restricted scans
        are sound for the cut pair at hand (see the module docstring's
        anchoring rule); the smaller sound side is chosen.
        """
        if not self.node_restriction:
            return range(self.execution.num_nodes)
        nx, ny = x.node_set, y.node_set
        if anchored_x and anchored_y:
            return nx if len(nx) <= len(ny) else ny
        if anchored_x:
            return nx
        if anchored_y:
            return ny
        return range(self.execution.num_nodes)  # pragma: no cover - unused

    def _single_test(
        self,
        past_of_y: Cut,
        future_of_x: Cut,
        x: NonatomicEvent,
        y: NonatomicEvent,
        anchored_x: bool,
        anchored_y: bool,
    ) -> bool:
        """One ``≪̸(↓Y, X↑)`` test (relations R2', R3, R4, R4')."""
        self.ll_tests += 1
        return not_ll_restricted(
            past_of_y,
            future_of_x,
            self._scan_nodes(x, y, anchored_x, anchored_y),
            self.counter,
        )

    def _forall_x(self, past_of_y: Cut, x: NonatomicEvent) -> bool:
        """``∀x: ≪̸(↓Y, x↑)`` via per-node greatest events of X.

        Each singleton test is one comparison at that event's own node:
        ``T(↓Y)[i] ≥ index(x)`` (the future cut of ``x`` surfaces at
        ``x`` itself on its node).
        """
        v = past_of_y.vector
        if self.node_restriction:
            for i in x.node_set:
                self.ll_tests += 1
                self.counter.add(1, "test")
                if v[i] < x.last_at(i):
                    return False
            return True
        # Ablation: full ≪̸ test over all |P| nodes for each extremal x.
        ex = self.execution
        from .cuts import future_cut  # local import to avoid cycle at module load

        for i in x.node_set:
            self.ll_tests += 1
            fut = future_cut(ex, (i, x.last_at(i)))
            if not not_ll_restricted(past_of_y, fut,
                                     range(ex.num_nodes), self.counter):
                return False
        return True

    def _forall_y(self, future_of_x: Cut, y: NonatomicEvent) -> bool:
        """``∀y: ≪̸(↓y, X↑)`` via per-node least events of Y.

        Each singleton test is one comparison at that event's own node:
        ``index(y) ≥ T(X↑)[i]`` (the past cut of ``y`` surfaces at ``y``
        itself on its node).
        """
        w = future_of_x.vector
        if self.node_restriction:
            for i in y.node_set:
                self.ll_tests += 1
                self.counter.add(1, "test")
                if y.first_at(i) < w[i]:
                    return False
            return True
        ex = self.execution
        from .cuts import past_cut

        for i in y.node_set:
            self.ll_tests += 1
            pst = past_cut(ex, (i, y.first_at(i)))
            if not not_ll_restricted(pst, future_of_x,
                                     range(ex.num_nodes), self.counter):
                return False
        return True

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def evaluate(
        self, relation: Relation, x: NonatomicEvent, y: NonatomicEvent
    ) -> bool:
        """Evaluate ``R(X, Y)`` with Theorem-20 complexity.

        The relevant cuts of X and Y are computed once and memoized in
        the shared :class:`~repro.core.context.CutCache` keyed by
        interval identity (Key Idea 1); repeat queries — even through
        other evaluators or distinct-but-equal interval objects — reuse
        them.
        """
        if x.execution is not self.execution or y.execution is not self.execution:
            raise ValueError("intervals do not belong to this evaluator's execution")
        cut = self.context.cut
        if relation in (Relation.R1, Relation.R1P):
            if len(x.node_set) <= len(y.node_set):
                return self._forall_x(cut(y, "C1"), x)
            return self._forall_y(cut(x, "C4"), y)
        if relation is Relation.R2:
            return self._forall_x(cut(y, "C2"), x)
        if relation is Relation.R3P:
            return self._forall_y(cut(x, "C3"), y)
        if relation is Relation.R2P:
            # ∪⇑X is unanchored at N_X: only the N_Y scan is sound.
            return self._single_test(
                cut(y, "C2"), cut(x, "C4"), x, y, anchored_x=False, anchored_y=True
            )
        if relation is Relation.R3:
            # ∩⇓Y is unanchored at N_Y: only the N_X scan is sound.
            return self._single_test(
                cut(y, "C1"), cut(x, "C3"), x, y, anchored_x=True, anchored_y=False
            )
        if relation in (Relation.R4, Relation.R4P):
            return self._single_test(
                cut(y, "C2"), cut(x, "C3"), x, y, anchored_x=True, anchored_y=True
            )
        raise ValueError(f"unknown relation: {relation!r}")  # pragma: no cover

    def evaluate_spec(
        self, spec: RelationSpec, x: NonatomicEvent, y: NonatomicEvent
    ) -> bool:
        """Evaluate a 32-family relation ``r(X,Y) = R(X̂, Ŷ)``.

        Per Section 2.5, the proxies are themselves nonatomic poset
        events (with at most one component event per node), so the base
        evaluation applies unchanged — with the proxies' cuts cached on
        the proxy objects, which are in turn cached on the intervals.
        """
        px = proxy_of(x, spec.proxy_x, self.proxy_definition)
        py = proxy_of(y, spec.proxy_y, self.proxy_definition)
        return self.evaluate(spec.relation, px, py)
