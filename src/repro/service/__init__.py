"""Live networked monitoring of synchronization conditions.

This package exposes the online monitor
(:class:`~repro.monitor.online.OnlineMonitor`) over the network as a
long-running service.  The pieces, bottom-up:

* :mod:`~repro.service.protocol` — the length-prefixed newline-JSON
  wire protocol (frame encoding, incremental decoding, size limits);
* :mod:`~repro.service.log` — the append-only, fsync-batched,
  replayable event log every accepted operation is written to;
* :mod:`~repro.service.core` — the transport-agnostic ingest state
  machine: per-node shards feeding a streaming clock table through
  :func:`~repro.backends.base.make_streaming_table`, causal parking of
  receives ahead of their sends, deferred interval closes, monotone
  watch-sequence numbering, and warm-standby record application;
* :mod:`~repro.service.server` — the asyncio front end
  (:class:`~repro.service.server.MonitorService`): client sessions,
  backpressure (``throttle`` frames, then disconnects), verdict
  pushes, replication streaming, and promotion;
* :mod:`~repro.service.client` — the blocking-socket
  :class:`~repro.service.client.MonitorClient` plus recorded-trace
  replay.

See ``docs/SERVICE.md`` for the protocol and failover semantics, and
``python -m repro serve`` / ``python -m repro client`` for the CLI.
"""

from .client import MonitorClient, ServiceError, plan_replay, replay_trace
from .core import MonitorCore, ShardCounters
from .log import EventLog, LogError, read_records
from .protocol import (
    FrameDecoder,
    FrameTooLargeError,
    ProtocolError,
    encode_frame,
)
from .server import MonitorService, ServiceHandle

__all__ = [
    "EventLog",
    "FrameDecoder",
    "FrameTooLargeError",
    "LogError",
    "MonitorClient",
    "MonitorCore",
    "MonitorService",
    "ProtocolError",
    "ServiceError",
    "ServiceHandle",
    "ShardCounters",
    "encode_frame",
    "plan_replay",
    "read_records",
    "replay_trace",
]
