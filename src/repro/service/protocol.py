"""Wire protocol for the live monitoring service.

Frames are length-prefixed newline-JSON: one ASCII decimal byte count,
a newline, the UTF-8 JSON body, a trailing newline::

    38
    {"type":"event","node":0,"kind":"send"}

The length prefix lets both sides reject oversized frames *before*
buffering or parsing them (the same discipline
:func:`repro.events.serialization.loads` applies to whole-trace
payloads via its ``max_bytes`` guard), and the trailing newline keeps
captures greppable and the protocol debuggable with ``nc``.

Every frame is a JSON object with a ``type`` field.  Client → server:

========== ==========================================================
``hello``   open a session: ``version``, ``role`` (``client`` /
            ``replica``), and for replicas ``resume_seq`` (last log
            sequence number already held)
``event``   one observed event: ``node``, ``kind`` (``internal`` /
            ``send`` / ``recv``), optional ``label``/``time``/
            ``interval`` tag, and for receives ``send`` = the
            ``[node, index]`` id of the matching send
``close``   declare an interval complete: ``interval`` plus
            ``expected`` — the total number of events that will have
            been tagged into it; the server defers the close until
            the count is reached (so any client of a sharded replay
            may issue it)
``watch``   register a watch: ``name``, ``condition`` (textual
            condition syntax of :mod:`repro.monitor.predicates`)
``stats``   request a counters snapshot
``bye``     end the session cleanly
========== ==========================================================

Server → client:

============ ========================================================
``welcome``   session accepted: ``version``, ``session``,
              ``num_nodes``, ``role``
``verdict``   a watch fired: ``watch_seq`` (monotone), ``name``,
              ``passed``, ``decided_at``
``throttle``  backpressure warning: ``queued``, ``limit`` — slow or
              causally-stalled sessions get one of these when their
              unapplied backlog crosses the soft limit; crossing the
              hard limit closes the connection with an ``error``
``stats``     counters snapshot (see
              :meth:`repro.service.core.MonitorCore.stats`)
``error``     terminal failure: ``code``, ``message``
``replicate`` one replicated log record: ``record`` (replica
              sessions only)
``bye``       session closed
============ ========================================================

:class:`FrameDecoder` is the incremental byte-stream decoder used by
the blocking client; :func:`read_frame_async` is the asyncio-side
reader.  Both enforce :data:`MAX_FRAME_BYTES` (configurable) and raise
typed errors so the server can answer garbage with an ``error`` frame
instead of dying.
"""

from __future__ import annotations

import json
from typing import Any

__all__ = [
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "FrameDecoder",
    "FrameTooLargeError",
    "ProtocolError",
    "encode_frame",
    "error_frame",
    "read_frame_async",
]

#: Protocol schema version; ``hello``/``welcome`` carry it and peers
#: reject mismatches rather than guessing.
PROTOCOL_VERSION = 1

#: Default per-frame byte ceiling.  Single events are tiny; the cap
#: bounds a hostile or broken peer's memory cost per frame.
MAX_FRAME_BYTES = 1 << 20

#: Longest accepted length-prefix line ("1048576" is 7 chars; allow
#: slack for the newline and future caps).
_MAX_HEADER_BYTES = 16


class ProtocolError(ValueError):
    """The byte stream violates the framing or frame schema."""


class FrameTooLargeError(ProtocolError):
    """A frame's declared length exceeds the configured ceiling."""


def encode_frame(frame: dict[str, Any]) -> bytes:
    """Serialise one frame: ``b"<len>\\n<json>\\n"``."""
    body = json.dumps(frame, separators=(",", ":")).encode("utf-8")
    return b"%d\n%s\n" % (len(body), body)


def error_frame(code: str, message: str) -> dict[str, Any]:
    """A terminal ``error`` frame."""
    return {"type": "error", "code": code, "message": message}


def _parse_body(body: bytes) -> dict[str, Any]:
    """Decode and validate one frame body."""
    try:
        frame = json.loads(body)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"frame body is not valid JSON: {exc}") from exc
    if not isinstance(frame, dict) or not isinstance(frame.get("type"), str):
        raise ProtocolError("frame must be a JSON object with a 'type' field")
    return frame


def _parse_header(line: bytes, max_frame_bytes: int) -> int:
    """Parse one length-prefix line into a validated byte count."""
    text = line.strip()
    if not text.isdigit():
        raise ProtocolError(f"bad frame length prefix: {text[:32]!r}")
    length = int(text)
    if length > max_frame_bytes:
        raise FrameTooLargeError(
            f"frame of {length} bytes exceeds the {max_frame_bytes}-byte limit"
        )
    return length


class FrameDecoder:
    """Incremental decoder for the blocking-socket side.

    Feed raw chunks with :meth:`feed`; complete frames come back in
    arrival order.  Enforces the frame-size ceiling at the header, so
    an oversized frame costs at most one header line of buffering.
    """

    def __init__(self, max_frame_bytes: int = MAX_FRAME_BYTES) -> None:
        self.max_frame_bytes = max_frame_bytes
        self._buf = bytearray()
        self._need: int | None = None  # body bytes awaited (incl. newline)

    def feed(self, data: bytes) -> list[dict[str, Any]]:
        """Consume a chunk; return every frame it completed."""
        self._buf.extend(data)
        frames: list[dict[str, Any]] = []
        while True:
            if self._need is None:
                nl = self._buf.find(b"\n")
                if nl < 0:
                    if len(self._buf) > _MAX_HEADER_BYTES:
                        raise ProtocolError("frame length prefix too long")
                    return frames
                header = bytes(self._buf[:nl])
                del self._buf[: nl + 1]
                self._need = _parse_header(header, self.max_frame_bytes) + 1
            if len(self._buf) < self._need:
                return frames
            body = bytes(self._buf[: self._need - 1])
            del self._buf[: self._need]
            self._need = None
            frames.append(_parse_body(body))


async def read_frame_async(
    reader: Any, max_frame_bytes: int = MAX_FRAME_BYTES
) -> dict[str, Any] | None:
    """Read one frame from an :class:`asyncio.StreamReader`.

    Returns ``None`` on clean EOF at a frame boundary.  The size
    ceiling is enforced from the header before the body is awaited.

    Raises
    ------
    ProtocolError
        On malformed framing, truncated frames, or invalid bodies.
    FrameTooLargeError
        If the declared length exceeds ``max_frame_bytes``.
    """
    import asyncio

    try:
        header = await reader.readuntil(b"\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between frames
        raise ProtocolError("connection closed mid-header") from exc
    except asyncio.LimitOverrunError as exc:
        raise ProtocolError("frame length prefix too long") from exc
    if len(header) > _MAX_HEADER_BYTES:
        raise ProtocolError("frame length prefix too long")
    length = _parse_header(header, max_frame_bytes)
    try:
        body = await reader.readexactly(length + 1)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed mid-frame") from exc
    return _parse_body(body[:-1])
