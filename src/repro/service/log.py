"""Append-only replicated event log.

Every operation the primary :class:`~repro.service.server.MonitorService`
accepts — events, interval closes, watch registrations, and emitted
verdicts — is appended here as one JSON line before its effects are
visible to any client.  The log is:

* **append-only** — records carry a strictly increasing ``seq``;
* **fsync-batched** — appends only buffer and count; the *owner*
  issues one ``fsync`` per ``fsync_every`` appends by polling
  :attr:`~EventLog.needs_sync` and calling :meth:`~EventLog.sync`
  (from a worker thread when the owner is an event loop), plus on
  :meth:`~EventLog.close` — amortising durability cost across the
  ingest batch while keeping the blocking syscall out of every
  coroutine's call graph;
* **replayable** — :func:`read_records` tolerates a trailing partial
  line (a crash mid-write loses at most the unsynced suffix, never the
  parseable prefix), and
  :meth:`repro.service.core.MonitorCore.from_records` rebuilds the
  whole monitor state from it;
* **replicated** — a warm-standby service tails the primary's appends
  over the wire (``replicate`` frames) into its own ``EventLog``, so
  promotion starts from local durable state.

Record shapes (all carry ``seq`` and ``op``):

=========== ========================================================
``init``     ``num_nodes`` — first record of every log
``event``    ``node``, ``kind``, ``label``, ``time``, ``interval``,
             ``send`` (recvs only: ``[node, index]`` of the send)
``close``    ``interval``, ``expected``
``watch``    ``name``, ``condition``
``verdict``  ``watch_seq``, ``name``, ``passed``, ``decided_at`` —
             appended when a notification is *emitted*; its presence
             is what makes failover exactly-once (a promoted standby
             re-emits only watches with no logged verdict)
=========== ========================================================
"""

from __future__ import annotations

import json
import os
from typing import Any

__all__ = ["EventLog", "LogError", "read_records"]


class LogError(ValueError):
    """Raised when a log file or record sequence is invalid."""


def read_records(path: str) -> list[dict[str, Any]]:
    """Read every complete record of a log file.

    A trailing partial line (crash mid-append) is ignored; a corrupt
    line *followed by* further records raises :class:`LogError`, since
    that indicates real damage rather than a torn tail.
    """
    records: list[dict[str, Any]] = []
    if not os.path.exists(path):
        return records
    with open(path, "rb") as fh:
        raw = fh.read()
    lines = raw.split(b"\n")
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as exc:
            trailing = all(not later.strip() for later in lines[i + 1 :])
            if trailing:
                break  # torn tail from a crash mid-write; safe to drop
            raise LogError(
                f"{path}: corrupt record at line {i + 1}: {exc}"
            ) from exc
        if not isinstance(rec, dict) or "seq" not in rec or "op" not in rec:
            raise LogError(f"{path}: malformed record at line {i + 1}")
        records.append(rec)
    for prev, cur in zip(records, records[1:]):
        if cur["seq"] != prev["seq"] + 1:
            raise LogError(
                f"{path}: sequence gap {prev['seq']} -> {cur['seq']}"
            )
    return records


class EventLog:
    """One append-only, fsync-batched log file.

    Parameters
    ----------
    path:
        File to append to.  Existing complete records are loaded (and
        kept in memory for replication catch-up); appending resumes at
        the next sequence number.
    fsync_every:
        Batch size for durability: an ``fsync`` is issued every this
        many appends.  ``0`` disables fsync entirely (tests,
        throwaway logs).
    """

    def __init__(self, path: str, *, fsync_every: int = 64) -> None:
        self.path = path
        self.fsync_every = fsync_every
        self._records = read_records(path)
        self._next_seq = self._records[-1]["seq"] + 1 if self._records else 1
        self._unsynced = 0
        self._fh = open(path, "ab")

    # ------------------------------------------------------------------
    # appending
    # ------------------------------------------------------------------
    def append(self, record: dict[str, Any]) -> int:
        """Append one record; assigns and returns its ``seq``.

        If the record already carries a ``seq`` (replication apply), it
        must be exactly the next expected one.

        ``append`` never blocks on durability: it only buffers the
        write and counts it.  The *owner* watches :attr:`needs_sync`
        and calls :meth:`sync` — from a worker thread when the owner is
        an event loop (see ``MonitorService._flush_log``), inline
        otherwise.  This keeps the fsync out of every coroutine's call
        graph instead of burying it ``fsync_every`` appends deep.
        """
        seq = record.get("seq")
        if seq is None:
            record = {"seq": self._next_seq, **record}
        elif seq != self._next_seq:
            raise LogError(
                f"out-of-order append: got seq {seq}, expected {self._next_seq}"
            )
        self._fh.write(
            json.dumps(record, separators=(",", ":")).encode("utf-8") + b"\n"
        )
        self._records.append(record)
        self._next_seq += 1
        self._unsynced += 1
        return record["seq"]

    @property
    def needs_sync(self) -> bool:
        """True once ``fsync_every`` appends have accumulated unsynced."""
        return bool(self.fsync_every) and self._unsynced >= self.fsync_every

    def sync(self) -> None:
        """Flush buffered appends and fsync to disk.

        The unsynced counter is reset *before* the flush: an append
        racing in from another thread while the fsync runs counts
        toward the next batch (one extra sync at worst, never a record
        silently left out of durability accounting).
        """
        self._unsynced = 0
        self._fh.flush()
        if self.fsync_every:
            os.fsync(self._fh.fileno())

    def close(self) -> None:
        """Sync and close the file (idempotent)."""
        if not self._fh.closed:
            self.sync()
            self._fh.close()

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    @property
    def last_seq(self) -> int:
        """Sequence number of the most recent record (0 when empty)."""
        return self._next_seq - 1

    @property
    def records(self) -> list[dict[str, Any]]:
        """All records, oldest first (live list — do not mutate)."""
        return self._records

    def records_from(self, seq: int) -> list[dict[str, Any]]:
        """Records with sequence number strictly greater than ``seq``."""
        if not self._records or seq >= self._next_seq - 1:
            return []
        # records are dense (seq i lives at index i - first_seq)
        first = self._records[0]["seq"]
        start = max(seq + 1 - first, 0)
        return self._records[start:]

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"EventLog({self.path!r}, last_seq={self.last_seq})"
