"""Transport-agnostic ingest state machine for the monitoring service.

:class:`MonitorCore` owns everything about live ingest that is *not*
networking, so the asyncio front end stays a thin frame router and the
failover tests can drive the state machine directly:

* **Sharded ingest** — every node has its own FIFO pending queue (a
  shard groups ``num_nodes / num_shards`` of them for the counters;
  the default is one shard per node).  Events flow through the
  wrapped :class:`~repro.monitor.online.OnlineMonitor`, whose clock
  storage comes from the
  :func:`~repro.backends.base.make_streaming_table` seam — ingest and
  finalisation keep the streaming fast path's **zero offline clock
  passes**.
* **Causal parking** — a receive arriving before its send (normal
  under multi-client sharded replay) parks its node's queue; the pump
  re-sweeps after every application until a fixpoint.  Interval
  closes carry the *expected* tag count and apply once the count is
  reached, so any client of a sharded replay may issue them.
* **The log** — every applied operation is appended (in application
  order, which makes the log replayable without parking) before its
  effects are visible to any client; see :mod:`repro.service.log`.
* **Exactly-once watch notifications** — emitted verdicts get a
  monotone ``watch_seq`` and are themselves logged; a replica stashes
  the notifications it derives from replayed closes as *unconfirmed*
  until the primary's matching verdict record arrives, and
  :meth:`promote` emits exactly the unconfirmed remainder — no watch
  is lost, none is duplicated.
"""

from __future__ import annotations

import time
from collections import deque
from collections.abc import Callable, Iterable
from dataclasses import dataclass
from typing import Any

from ..backends.base import clock_pass_counts
from ..events.event import EventId
from ..monitor.online import OnlineMonitor, WatchNotification
from .log import EventLog, LogError

__all__ = ["MonitorCore", "ShardCounters"]

_KINDS = ("internal", "send", "recv")


@dataclass
class ShardCounters:
    """Ingest counters for one shard (a group of node queues)."""

    applied: int = 0
    queued: int = 0
    queued_peak: int = 0
    throttles: int = 0

    def as_dict(self) -> dict[str, int]:
        """JSON-ready snapshot for the ``stats`` frame."""
        return {
            "applied": self.applied,
            "queued": self.queued,
            "queued_peak": self.queued_peak,
            "throttles": self.throttles,
        }


@dataclass
class _PendingClose:
    """A ``close`` op waiting for its interval to reach ``expected``."""

    interval: str
    expected: int
    session: int | None
    submitted_at: float = 0.0


class MonitorCore:
    """Sharded, log-backed, failover-aware wrapper of the online monitor.

    Parameters
    ----------
    num_nodes:
        Width of the monitored system.
    num_shards:
        Counter granularity for ingest sharding; defaults to one shard
        per node (``shard = node % num_shards``).
    log:
        The durable :class:`~repro.service.log.EventLog`; ``None``
        keeps records in memory only (tests, benchmarks) with the same
        sequencing semantics.
    role:
        ``"primary"`` emits watch verdicts as they fire; ``"replica"``
        stashes them unconfirmed until the primary's verdict records
        arrive (see :meth:`promote`).
    clock:
        Monotonic time source (injectable for tests); used for the
        watch-latency counters only.
    """

    def __init__(
        self,
        num_nodes: int,
        *,
        num_shards: int | None = None,
        log: EventLog | None = None,
        role: str = "primary",
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if role not in ("primary", "replica"):
            raise ValueError(f"unknown role: {role!r}")
        self.num_nodes = num_nodes
        self.num_shards = (
            num_nodes if num_shards is None else max(1, min(num_shards, num_nodes))
        )
        self.role = role
        self._clock = clock
        self._monitor = OnlineMonitor(num_nodes)
        self._handles: dict[EventId, Any] = {}
        self._queues: list[deque] = [deque() for _ in range(num_nodes)]
        self._pending_closes: list[_PendingClose] = []
        self._pending_by_session: dict[int, int] = {}
        self.shards = [ShardCounters() for _ in range(self.num_shards)]
        self._log = log
        self._mem_records: list[dict[str, Any]] = []
        self._mem_next_seq = 1
        self._replayed_last_seq = 0
        self.throttles = 0
        self._watch_seq = 0
        self._emitted: set[str] = set()
        self._unconfirmed: dict[str, dict[str, Any]] = {}
        self._closes_applied = 0
        self._watch_count = 0
        self._latency_count = 0
        self._latency_total = 0.0
        self._latency_max = 0.0
        # the pass counters are process-global; report deltas since
        # this core came up (other code in the process may run offline
        # analyses of its own)
        self._passes_at_start = dict(clock_pass_counts())
        if log is not None and not log.records:
            self._append({"op": "init", "num_nodes": num_nodes})
        elif log is None:
            self._append({"op": "init", "num_nodes": num_nodes})

    # ------------------------------------------------------------------
    # construction from a replicated log
    # ------------------------------------------------------------------
    @classmethod
    def from_records(
        cls,
        records: list[dict[str, Any]],
        *,
        log: EventLog | None = None,
        role: str = "primary",
        num_shards: int | None = None,
    ) -> "MonitorCore":
        """Rebuild the full monitor state by replaying log records.

        ``records`` is typically :func:`~repro.service.log.read_records`
        output (or :attr:`EventLog.records` of a freshly opened log —
        pass that same log as ``log`` and the replay will not
        re-append).  The returned core resumes at the records' last
        sequence number; when ``role`` is ``"primary"`` (promotion from
        a dead primary's replicated log), watches that were decidable
        but have no logged verdict are re-derived and will be emitted
        by the first :meth:`promote` call.
        """
        if not records:
            raise LogError("cannot rebuild from an empty record list")
        head = records[0]
        if head.get("op") != "init" or "num_nodes" not in head:
            raise LogError("log must start with an init record")
        core = cls(
            int(head["num_nodes"]),
            num_shards=num_shards,
            log=None,
            role="replica",
        )
        core._mem_records.clear()  # drop the fresh init; replay the real one
        for rec in records:
            core._replay(rec)
        core._mem_records = list(records)
        core._mem_next_seq = core._replayed_last_seq + 1
        core._log = log
        if role == "primary":
            core.role = "primary"
        return core

    # ------------------------------------------------------------------
    # record plumbing
    # ------------------------------------------------------------------
    def _append(self, record: dict[str, Any]) -> int:
        """Durably record one applied operation; returns its seq."""
        if self._log is not None:
            return self._log.append(record)
        seq = record.get("seq")
        if seq is None:
            record = {"seq": self._mem_next_seq, **record}
        self._mem_records.append(record)
        self._mem_next_seq = record["seq"] + 1
        return record["seq"]

    @property
    def last_seq(self) -> int:
        """Sequence number of the most recent record."""
        if self._log is not None:
            return self._log.last_seq
        return self._mem_next_seq - 1

    def records_from(self, seq: int) -> list[dict[str, Any]]:
        """Records with sequence number strictly greater than ``seq``
        (replication catch-up reads)."""
        if self._log is not None:
            return self._log.records_from(seq)
        return [r for r in self._mem_records if r["seq"] > seq]

    @property
    def log_needs_sync(self) -> bool:
        """Whether the backing log has a full unsynced batch pending."""
        return self._log is not None and self._log.needs_sync

    def flush_log(self) -> None:
        """Fsync batched appends.  Blocking: event-loop owners must run
        this in an executor (``MonitorService._flush_log`` does)."""
        if self._log is not None:
            self._log.sync()

    def close_log(self) -> None:
        """Sync and close the backing log (idempotent).  Blocking, like
        :meth:`flush_log`."""
        if self._log is not None:
            self._log.close()

    # ------------------------------------------------------------------
    # submission (live clients)
    # ------------------------------------------------------------------
    def _validate_event(self, rec: dict[str, Any]) -> dict[str, Any]:
        node = rec.get("node")
        if not isinstance(node, int) or not (0 <= node < self.num_nodes):
            raise ValueError(f"event names no such node: {node!r}")
        kind = rec.get("kind", "internal")
        if kind not in _KINDS:
            raise ValueError(f"unknown event kind: {kind!r}")
        out: dict[str, Any] = {"node": node, "kind": kind}
        for key in ("label", "interval"):
            val = rec.get(key)
            if val is not None and not isinstance(val, str):
                raise ValueError(f"event {key} must be a string")
            if val is not None:
                out[key] = val
        t = rec.get("time")
        if t is not None:
            if not isinstance(t, (int, float)) or isinstance(t, bool):
                raise ValueError("event time must be a number")
            out["time"] = float(t)
        if kind == "recv":
            send = rec.get("send")
            if (
                not isinstance(send, (list, tuple))
                or len(send) != 2
                or not all(isinstance(v, int) for v in send)
            ):
                raise ValueError("recv events need send=[node, index]")
            s_node, s_idx = send
            if not (0 <= s_node < self.num_nodes) or s_idx < 1:
                raise ValueError(f"recv references no such send: {send!r}")
            out["send"] = [s_node, s_idx]
        elif rec.get("send") is not None:
            raise ValueError("only recv events carry a send reference")
        return out

    def submit_event(
        self, rec: dict[str, Any], session: int | None = None
    ) -> list[dict[str, Any]]:
        """Enqueue one event frame; returns any verdicts that fired.

        The event is validated, queued on its node's shard, and the
        pump applies everything that became applicable (this event,
        parked receives it unblocked, deferred closes it completed).
        """
        rec = self._validate_event(rec)
        node = rec["node"]
        shard = self.shards[node % self.num_shards]
        self._queues[node].append((rec, session))
        shard.queued += 1
        shard.queued_peak = max(shard.queued_peak, shard.queued)
        if session is not None:
            self._pending_by_session[session] = (
                self._pending_by_session.get(session, 0) + 1
            )
        return self._pump()

    def submit_close(
        self, interval: str, expected: int, session: int | None = None
    ) -> list[dict[str, Any]]:
        """Declare an interval complete at ``expected`` tagged events.

        The close applies (fires watches, is logged) as soon as the
        interval's tag count reaches ``expected`` — immediately if it
        already has.
        """
        if not isinstance(interval, str) or not interval:
            raise ValueError("close needs a non-empty interval name")
        if not isinstance(expected, int) or expected < 1:
            raise ValueError("close needs expected >= 1")
        self._pending_closes.append(
            _PendingClose(interval, expected, session, self._clock())
        )
        if session is not None:
            self._pending_by_session[session] = (
                self._pending_by_session.get(session, 0) + 1
            )
        return self._pump()

    def submit_watch(
        self, name: str, condition: str, session: int | None = None
    ) -> list[dict[str, Any]]:
        """Register a watch; fires immediately if already decidable."""
        if not isinstance(name, str) or not name:
            raise ValueError("watch needs a non-empty name")
        if self.has_watch(name):
            raise ValueError(f"watch {name!r} already registered")
        self._monitor.watch(name, condition)  # parse errors propagate
        self._watch_count += 1
        self._append({"op": "watch", "name": name, "condition": condition})
        notes = self._monitor.poll_watches()
        return self._handle_notifications(notes, submitted_at=self._clock())

    def has_watch(self, name: str) -> bool:
        """Whether ``name`` is already registered (or already decided);
        lets a restarted service skip re-submitting startup watches that
        the resumed log replayed."""
        return name in self._emitted or name in self._monitor.watch_names()

    def pending(self, session: int | None = None) -> int:
        """Unapplied (parked) operations — of one session, or total."""
        if session is not None:
            return self._pending_by_session.get(session, 0)
        return sum(len(q) for q in self._queues) + len(self._pending_closes)

    def session_gone(self, session: int) -> None:
        """Forget per-session accounting after a disconnect."""
        self._pending_by_session.pop(session, None)

    # ------------------------------------------------------------------
    # the pump
    # ------------------------------------------------------------------
    def _applicable(self, rec: dict[str, Any]) -> bool:
        if rec["kind"] != "recv":
            return True
        return tuple(rec["send"]) in self._handles

    def _apply_event(self, rec: dict[str, Any]) -> None:
        """Feed one validated event into the monitor (no logging here:
        the pump logs live submissions; replay must not re-log)."""
        node, kind = rec["node"], rec["kind"]
        label = rec.get("label")
        t = rec.get("time")
        tag = rec.get("interval")
        if kind == "send":
            handle = self._monitor.send(node, label=label, time=t, interval=tag)
            self._handles[handle.send] = handle
        elif kind == "recv":
            handle = self._handles[tuple(rec["send"])]
            self._monitor.recv(node, handle, label=label, time=t, interval=tag)
        else:
            self._monitor.internal(node, label=label, time=t, interval=tag)

    def _settle(self, session: int | None) -> None:
        if session is not None and session in self._pending_by_session:
            left = self._pending_by_session[session] - 1
            if left <= 0:
                del self._pending_by_session[session]
            else:
                self._pending_by_session[session] = left

    def _pump(self) -> list[dict[str, Any]]:
        """Apply every applicable queued op until a fixpoint; returns
        the verdict notifications emitted along the way."""
        out: list[dict[str, Any]] = []
        progressed = True
        while progressed:
            progressed = False
            for node, queue in enumerate(self._queues):
                shard = self.shards[node % self.num_shards]
                while queue and self._applicable(queue[0][0]):
                    rec, session = queue.popleft()
                    self._apply_event(rec)
                    self._append({"op": "event", **rec})
                    shard.queued -= 1
                    shard.applied += 1
                    self._settle(session)
                    progressed = True
            still: list[_PendingClose] = []
            for close in self._pending_closes:
                iv = self._monitor.interval(close.interval)
                if iv.closed:
                    self._settle(close.session)
                    progressed = True
                    continue  # duplicate close; first one won
                if iv.count >= close.expected:
                    notes = self._monitor.close(close.interval)
                    self._closes_applied += 1
                    self._append({
                        "op": "close",
                        "interval": close.interval,
                        "expected": close.expected,
                    })
                    out.extend(
                        self._handle_notifications(
                            notes, submitted_at=close.submitted_at
                        )
                    )
                    self._settle(close.session)
                    progressed = True
                else:
                    still.append(close)
            self._pending_closes = still
        return out

    # ------------------------------------------------------------------
    # watch emission / replication / failover
    # ------------------------------------------------------------------
    def _handle_notifications(
        self, notes: Iterable[WatchNotification], submitted_at: float
    ) -> list[dict[str, Any]]:
        """Route fired watches: emit (primary) or stash (replica)."""
        out: list[dict[str, Any]] = []
        for note in notes:
            if note.name in self._emitted:
                continue
            verdict = {
                "op": "verdict",
                "name": note.name,
                "passed": note.passed,
                "decided_at": note.decided_at,
            }
            if self.role == "primary":
                out.append(self._emit(verdict, submitted_at))
            else:
                self._unconfirmed.setdefault(note.name, verdict)
        return out

    def _emit(
        self, verdict: dict[str, Any], submitted_at: float | None
    ) -> dict[str, Any]:
        self._watch_seq += 1
        verdict = {**verdict, "watch_seq": self._watch_seq}
        self._emitted.add(verdict["name"])
        self._append(verdict)
        if submitted_at is not None:
            lat = max(self._clock() - submitted_at, 0.0)
            self._latency_count += 1
            self._latency_total += lat
            self._latency_max = max(self._latency_max, lat)
        return verdict

    def _replay(self, rec: dict[str, Any]) -> None:
        """Apply one already-sequenced record without re-logging."""
        op = rec.get("op")
        if op == "init":
            if int(rec["num_nodes"]) != self.num_nodes:
                raise LogError(
                    f"init record num_nodes={rec['num_nodes']} does not "
                    f"match core width {self.num_nodes}"
                )
        elif op == "event":
            body = self._validate_event(rec)
            if not self._applicable(body):
                raise LogError(
                    f"record seq={rec.get('seq')}: receive precedes its "
                    "send in the log (corrupt replication order)"
                )
            self._apply_event(body)
            self.shards[body["node"] % self.num_shards].applied += 1
        elif op == "close":
            notes = self._monitor.close(rec["interval"])
            self._closes_applied += 1
            self._handle_notifications(notes, submitted_at=self._clock())
        elif op == "watch":
            self._monitor.watch(rec["name"], rec["condition"])
            self._watch_count += 1
            notes = self._monitor.poll_watches()
            self._handle_notifications(notes, submitted_at=self._clock())
        elif op == "verdict":
            name = rec["name"]
            self._emitted.add(name)
            self._unconfirmed.pop(name, None)
            self._watch_seq = max(self._watch_seq, int(rec["watch_seq"]))
        else:
            raise LogError(f"unknown log op: {op!r}")
        if "seq" in rec:
            self._replayed_last_seq = int(rec["seq"])

    def apply_record(self, rec: dict[str, Any]) -> None:
        """Standby path: durably append one replicated record, then
        apply it.  Records must arrive in sequence order."""
        self._append(dict(rec))
        self._replay(rec)

    def promote(self) -> list[dict[str, Any]]:
        """Become primary; emit the unconfirmed watch remainder.

        Returns the verdicts for every watch that had fired on the
        (dead) primary's behalf but whose emission was never confirmed
        by a replicated verdict record — plus nothing else, which is
        the exactly-once guarantee: already-confirmed watches stay in
        ``emitted`` and are never re-announced.
        """
        self.role = "primary"
        out = []
        for verdict in list(self._unconfirmed.values()):
            out.append(self._emit(verdict, submitted_at=None))
        self._unconfirmed.clear()
        return out

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def monitor(self) -> OnlineMonitor:
        """The wrapped online monitor (finalisation, offline hand-off)."""
        return self._monitor

    @property
    def watch_seq(self) -> int:
        """Highest emitted watch sequence number."""
        return self._watch_seq

    def note_throttle(self, node: int | None = None) -> None:
        """Count one throttle frame (against a node's shard if known)."""
        self.throttles += 1
        if node is not None:
            self.shards[node % self.num_shards].throttles += 1

    def stats(self) -> dict[str, Any]:
        """JSON-ready counters for the ``stats`` frame and CLI line."""
        passes = {
            key: count - self._passes_at_start.get(key, 0)
            for key, count in clock_pass_counts().items()
        }
        lat = {
            "count": self._latency_count,
            "avg_ms": (
                self._latency_total / self._latency_count * 1e3
                if self._latency_count
                else 0.0
            ),
            "max_ms": self._latency_max * 1e3,
        }
        return {
            "role": self.role,
            "num_nodes": self.num_nodes,
            "num_shards": self.num_shards,
            "events_applied": sum(s.applied for s in self.shards),
            "closes_applied": self._closes_applied,
            "watches_registered": self._watch_count,
            "verdicts_emitted": self._watch_seq,
            "throttles": self.throttles,
            "parked": self.pending(),
            "last_seq": self.last_seq,
            "shards": [s.as_dict() for s in self.shards],
            "watch_latency": lat,
            "clock_passes": dict(passes),
        }
