"""Blocking client for the live monitoring service.

:class:`MonitorClient` opens one session over a plain TCP socket and
speaks the :mod:`~repro.service.protocol` frames synchronously — the
natural shape for instrumented application code, tests, and the
``python -m repro client`` CLI, none of which want an event loop.
Pushed frames (verdicts, throttles) are collected whenever the client
touches the socket: explicitly via :meth:`~MonitorClient.poll` /
:meth:`~MonitorClient.wait_verdicts`, and implicitly while waiting for
a ``stats`` reply or during :meth:`~MonitorClient.close`.

:func:`plan_replay` / :func:`replay_trace` turn a recorded
:class:`~repro.events.trace.Trace` into the live frame stream a real
deployment would produce: per-node program order, receives after their
sends (via :func:`~repro.events.trace.causal_schedule`), events tagged
into intervals by label, and a ``close`` frame for each label issued
by the client that owns the label's *last* event.  Sharding splits the
stream by node (``node % num_shards == shard``); because every shard
derives the same global schedule, exactly one shard owns each close,
and the server's deferred-close counting makes arrival order
irrelevant.
"""

from __future__ import annotations

import socket
from typing import Any

from ..events.trace import Trace, causal_schedule
from .protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    FrameDecoder,
    encode_frame,
)

__all__ = ["MonitorClient", "ServiceError", "plan_replay", "replay_trace"]

_RECV_CHUNK = 1 << 16


class ServiceError(RuntimeError):
    """The service answered with a terminal ``error`` frame."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message


class MonitorClient:
    """One blocking session against a :class:`~repro.service.server.MonitorService`.

    Connects, performs the hello/welcome handshake, and exposes the
    client-side frame vocabulary as methods.  Usable as a context
    manager; :attr:`verdicts` and :attr:`throttles` accumulate the
    pushes observed so far.

    Parameters
    ----------
    host, port:
        Service address.
    num_nodes:
        If given, sent in the hello so the server can reject a client
        instrumented for a different system width.
    timeout:
        Socket timeout for blocking reads (seconds).
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        num_nodes: int | None = None,
        timeout: float = 10.0,
        max_frame_bytes: int = MAX_FRAME_BYTES,
    ) -> None:
        self.verdicts: list[dict[str, Any]] = []
        self.throttles = 0
        self.session: int | None = None
        self.num_nodes: int | None = None
        self._decoder = FrameDecoder(max_frame_bytes)
        self._timeout = timeout
        self._pending: list[dict[str, Any]] = []
        self._closed = False
        sock = socket.create_connection((host, port), timeout=timeout)
        try:
            self._sock = sock
            hello: dict[str, Any] = {
                "type": "hello",
                "version": PROTOCOL_VERSION,
                "role": "client",
            }
            if num_nodes is not None:
                hello["num_nodes"] = num_nodes
            self._send(hello)
            welcome = self._read_until("welcome")
            self.session = welcome["session"]
            self.num_nodes = welcome["num_nodes"]
        except BaseException:
            sock.close()
            raise

    # ------------------------------------------------------------------
    # socket plumbing
    # ------------------------------------------------------------------
    def _send(self, frame: dict[str, Any]) -> None:
        self._sock.sendall(encode_frame(frame))

    def _dispatch(self, frame: dict[str, Any]) -> dict[str, Any] | None:
        """Absorb push frames; return the frame if it is a reply."""
        ftype = frame.get("type")
        if ftype == "verdict":
            self.verdicts.append(frame)
            return None
        if ftype == "throttle":
            self.throttles += 1
            return None
        if ftype == "error":
            self._closed = True
            raise ServiceError(frame.get("code", "?"), frame.get("message", ""))
        return frame

    def _read_until(self, ftype: str) -> dict[str, Any]:
        """Block until a frame of the given type arrives, absorbing
        pushes along the way."""
        self._sock.settimeout(self._timeout)
        while True:
            while self._pending:
                reply = self._dispatch(self._pending.pop(0))
                if reply is not None and reply.get("type") == ftype:
                    return reply
            chunk = self._sock.recv(_RECV_CHUNK)
            if not chunk:
                self._closed = True
                raise ConnectionError("service closed the connection")
            self._pending.extend(self._decoder.feed(chunk))

    def poll(self) -> int:
        """Drain any already-arrived pushes without blocking; returns
        the number of frames absorbed."""
        absorbed = 0
        while self._pending:
            self._dispatch(self._pending.pop(0))
            absorbed += 1
        if self._closed:
            return absorbed
        self._sock.setblocking(False)
        try:
            while True:
                try:
                    chunk = self._sock.recv(_RECV_CHUNK)
                except (BlockingIOError, InterruptedError):
                    break
                if not chunk:
                    self._closed = True
                    break
                for frame in self._decoder.feed(chunk):
                    self._dispatch(frame)
                    absorbed += 1
        finally:
            self._sock.settimeout(self._timeout)
        return absorbed

    # ------------------------------------------------------------------
    # frame vocabulary
    # ------------------------------------------------------------------
    def send_event(
        self,
        node: int,
        kind: str = "internal",
        *,
        label: str | None = None,
        time: float | None = None,
        interval: str | None = None,
        send: tuple[int, int] | list[int] | None = None,
    ) -> None:
        """Stream one observed event (fire-and-forget)."""
        frame: dict[str, Any] = {"type": "event", "node": node, "kind": kind}
        if label is not None:
            frame["label"] = label
        if time is not None:
            frame["time"] = time
        if interval is not None:
            frame["interval"] = interval
        if send is not None:
            frame["send"] = list(send)
        self._send(frame)

    def close_interval(self, interval: str, expected: int) -> None:
        """Declare ``interval`` complete at ``expected`` tagged events."""
        self._send({"type": "close", "interval": interval, "expected": expected})

    def watch(self, name: str, condition: str) -> None:
        """Register a watch condition."""
        self._send({"type": "watch", "name": name, "condition": condition})

    def stats(self) -> dict[str, Any]:
        """Fetch the service's counters snapshot (blocks for the reply,
        which also confirms every previously sent frame was ingested).

        Ingested is not applied: a causally early frame (a receive
        whose send is still missing) may sit parked, and parked frames
        are not yet in the replicated log.  ``stats()["parked"] == 0``
        is the durability check a client should make before treating
        its stream as fully handed off."""
        self._send({"type": "stats"})
        return self._read_until("stats")["stats"]

    def wait_verdicts(self, count: int) -> list[dict[str, Any]]:
        """Block until at least ``count`` verdicts have been pushed."""
        self._sock.settimeout(self._timeout)
        while len(self.verdicts) < count:
            while self._pending:
                self._dispatch(self._pending.pop(0))
            if len(self.verdicts) >= count:
                break
            chunk = self._sock.recv(_RECV_CHUNK)
            if not chunk:
                self._closed = True
                raise ConnectionError(
                    f"service closed with {len(self.verdicts)}/{count} verdicts"
                )
            self._pending.extend(self._decoder.feed(chunk))
        return self.verdicts

    def close(self) -> None:
        """End the session cleanly (idempotent): bye, drain, shutdown."""
        if self._closed:
            self._sock.close()
            return
        try:
            self._send({"type": "bye"})
            self._read_until("bye")
        except (ConnectionError, OSError, ServiceError):
            pass
        finally:
            self._closed = True
            self._sock.close()

    def __enter__(self) -> "MonitorClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


# ----------------------------------------------------------------------
# trace replay
# ----------------------------------------------------------------------
def plan_replay(
    trace: Trace, shard: int = 0, num_shards: int = 1
) -> list[dict[str, Any]]:
    """Frames this shard must stream to replay ``trace`` live.

    Nodes are partitioned round-robin (``node % num_shards == shard``);
    the returned frames keep the causal schedule's order for the owned
    nodes.  Each labelled event is tagged into the interval named by
    its label, and the shard owning a label's globally *last* event
    also emits that label's ``close`` frame (with ``expected`` set to
    the label's total count across *all* shards).
    """
    if not 0 <= shard < num_shards:
        raise ValueError(f"shard {shard} outside 0..{num_shards - 1}")
    schedule = causal_schedule(trace)
    totals: dict[str, int] = {}
    last_owner: dict[str, int] = {}
    for node, ev, _send in schedule:
        if ev.label is not None:
            totals[ev.label] = totals.get(ev.label, 0) + 1
            last_owner[ev.label] = node
    frames: list[dict[str, Any]] = []
    seen: dict[str, int] = {}
    for node, ev, send in schedule:
        mine = node % num_shards == shard
        if mine:
            frame: dict[str, Any] = {
                "type": "event",
                "node": node,
                "kind": ev.kind.value,
            }
            if ev.label is not None:
                frame["label"] = ev.label
                frame["interval"] = ev.label
            if ev.time is not None:
                frame["time"] = ev.time
            if send is not None:
                frame["send"] = [send[0], send[1]]
            frames.append(frame)
        if ev.label is not None:
            seen[ev.label] = seen.get(ev.label, 0) + 1
            if (
                seen[ev.label] == totals[ev.label]
                and last_owner[ev.label] % num_shards == shard
            ):
                frames.append({
                    "type": "close",
                    "interval": ev.label,
                    "expected": totals[ev.label],
                })
    return frames


def replay_trace(
    client: MonitorClient,
    trace: Trace,
    shard: int = 0,
    num_shards: int = 1,
    *,
    poll_every: int = 64,
) -> dict[str, int]:
    """Stream one shard of a recorded trace through a live session.

    Polls the socket every ``poll_every`` frames so verdict and
    throttle pushes are absorbed while streaming (a client that never
    reads would eventually trip the server's slow-consumer cutoff).
    Returns ``{"events": ..., "closes": ...}`` counts.
    """
    events = closes = 0
    for i, frame in enumerate(plan_replay(trace, shard, num_shards)):
        client._send(frame)
        if frame["type"] == "event":
            events += 1
        else:
            closes += 1
        if poll_every and (i + 1) % poll_every == 0:
            client.poll()
    client.poll()
    return {"events": events, "closes": closes}
