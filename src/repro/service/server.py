"""The asyncio front end of the live monitoring service.

:class:`MonitorService` listens on a TCP socket, speaks the
:mod:`~repro.service.protocol` frame protocol, and routes every frame
into a :class:`~repro.service.core.MonitorCore`.  Because the core is
synchronous and the event loop single-threaded, ingest needs no locks;
concurrency lives entirely in the sessions.

Sessions and backpressure
-------------------------
Each connection gets a bounded outbound queue drained by a writer
task.  Two pressure signals protect the service, and neither ever
buffers without bound:

* **ingest pressure** — a session whose *unapplied* backlog (receives
  parked ahead of their sends, closes waiting on their counts) crosses
  ``throttle_at`` is sent one ``throttle`` frame; crossing
  ``disconnect_at`` ends the session with an ``error`` frame.
* **push pressure** — a session too slow to read its verdict pushes
  gets a ``throttle`` frame when its outbound queue crosses the soft
  mark, and is disconnected when the queue fills.

Replication
-----------
A peer connecting with ``hello role="replica"`` receives every log
record from its ``resume_seq`` on as ``replicate`` frames — catch-up
from the in-memory log tail, then live pushes as records append.  A
*standby* service is a ``MonitorService`` constructed with
``primary=(host, port)``: its :meth:`start` tails the primary instead
of listening (retrying an unreachable primary with backoff — loss is
only reported once an established stream dies), and :meth:`promote`
(after primary death) emits the unconfirmed watch remainder and opens
its own listener.

:class:`ServiceHandle` runs a service on a dedicated thread + event
loop for synchronous callers (tests, benchmarks, the CLI client side).
"""

from __future__ import annotations

import asyncio
import contextlib
import threading
from collections.abc import Callable, Coroutine
from typing import Any

from .core import MonitorCore
from .log import EventLog
from .protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    FrameTooLargeError,
    ProtocolError,
    encode_frame,
    error_frame,
    read_frame_async,
)

__all__ = ["MonitorService", "ServiceHandle"]


class _Session:
    """One connected peer: its writer task, queue, and pressure state."""

    __slots__ = (
        "sid", "role", "writer", "queue", "task",
        "throttled", "repl_cursor", "closed",
    )

    def __init__(
        self, sid: int, role: str, writer: asyncio.StreamWriter, maxsize: int
    ) -> None:
        self.sid = sid
        self.role = role
        self.writer = writer
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=maxsize)
        self.task: asyncio.Task | None = None
        self.throttled = False
        self.repl_cursor = 0
        self.closed = False


class MonitorService:
    """Networked online monitor: sharded ingest, watch pushes, replication.

    Parameters
    ----------
    num_nodes:
        Monitored system width (required unless ``core`` is given).
    host, port:
        Listen address; port 0 picks a free port (see :attr:`address`).
    log_path:
        Durable event-log file; ``None`` keeps records in memory.
    primary:
        ``(host, port)`` of a primary to stand by for.  The service
        starts as a warm standby: it tails the primary's log over the
        wire and does not listen until :meth:`promote`.
    watches:
        ``(name, condition)`` pairs registered at startup.
    throttle_at / disconnect_at:
        Per-session unapplied-backlog soft/hard limits (also the
        outbound queue soft mark / capacity).
    """

    def __init__(
        self,
        num_nodes: int | None = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        log_path: str | None = None,
        num_shards: int | None = None,
        fsync_every: int = 64,
        throttle_at: int = 256,
        disconnect_at: int = 1024,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        watches: tuple = (),
        primary: tuple[str, int] | None = None,
        core: MonitorCore | None = None,
    ) -> None:
        if core is None:
            if num_nodes is None:
                raise ValueError("need num_nodes (or a prebuilt core)")
            role = "replica" if primary is not None else "primary"
            log = (
                EventLog(log_path, fsync_every=fsync_every)
                if log_path
                else None
            )
            if log is not None and log.records:
                # restart over an existing log: replaying it is the only
                # way the core's handles/intervals/emitted-watch state
                # matches the sequence numbers the log resumes at
                try:
                    core = MonitorCore.from_records(
                        log.records,
                        log=log,
                        role=role,
                        num_shards=num_shards,
                    )
                    if core.num_nodes != num_nodes:
                        raise ValueError(
                            f"log {log_path!r} was recorded for "
                            f"{core.num_nodes} nodes, service asked for "
                            f"{num_nodes}"
                        )
                except BaseException:
                    log.close()
                    raise
            else:
                core = MonitorCore(
                    num_nodes, num_shards=num_shards, log=log, role=role
                )
        self.core = core
        self.host = host
        self.port = port
        self.primary = primary
        self.throttle_at = throttle_at
        self.disconnect_at = disconnect_at
        self.max_frame_bytes = max_frame_bytes
        self._startup_watches = tuple(watches)
        self._server: asyncio.base_events.Server | None = None
        self._sessions: dict[int, _Session] = {}
        self._next_sid = 1
        self._tail_task: asyncio.Task | None = None
        self._session_ended: asyncio.Event | None = None
        self._sync_lock = asyncio.Lock()
        self._stopped = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """The bound listen address (valid once listening)."""
        if self._server is None:
            raise RuntimeError("service is not listening")
        sock = self._server.sockets[0]
        addr = sock.getsockname()
        return (addr[0], addr[1])

    async def start(self) -> None:
        """Start serving (primary) or tailing the primary (standby)."""
        self._session_ended = asyncio.Event()
        for name, cond in self._startup_watches:
            if self.core.has_watch(name):
                continue  # already registered in the resumed log
            self.core.submit_watch(name, cond)
        await self._flush_log()
        if self.primary is not None:
            self._tail_task = asyncio.ensure_future(self._tail_primary())
            return
        # a core rebuilt from a log may hold verdicts that fired during
        # replay but were never durably emitted (the old primary died
        # between a close and its verdict record); emit them before any
        # client connects so the log regains its exactly-once invariant
        for verdict in self.core.promote():
            self._broadcast_verdict(verdict)
        await self._flush_log()
        await self._listen()

    async def _listen(self) -> None:
        server = await asyncio.start_server(
            self._handle_conn, self.host, self.port
        )
        try:
            self._server = server
        except BaseException:  # pragma: no cover - publication cannot fail
            server.close()
            raise

    async def wait_primary_loss(self) -> None:
        """Block until the replication tail to the primary ends (the
        primary died or closed); standby mode only."""
        if self._tail_task is None:
            raise RuntimeError("not tailing a primary")
        await asyncio.shield(self._tail_task)

    async def promote(self) -> list[dict[str, Any]]:
        """Standby → primary: emit the unconfirmed watch remainder and
        start listening.  Returns the verdicts emitted."""
        if self._tail_task is not None:
            self._tail_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._tail_task
            self._tail_task = None
        self.primary = None
        verdicts = self.core.promote()
        for verdict in verdicts:
            self._broadcast_verdict(verdict)
        await self._flush_log()
        if self._server is None:
            await self._listen()
        return verdicts

    async def stop(self) -> None:
        """Close the listener and every session; sync the log."""
        self._stopped = True
        if self._tail_task is not None:
            self._tail_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._tail_task
            self._tail_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for sess in list(self._sessions.values()):
            await self._end_session(sess)
        # the final sync+close blocks on the disk, like every fsync:
        # hand it to a worker thread rather than stalling the loop
        await asyncio.get_running_loop().run_in_executor(
            None, self.core.close_log
        )

    async def wait_session_end(self) -> None:
        """Block until some client session ends (``--oneshot`` serving)."""
        assert self._session_ended is not None
        await self._session_ended.wait()

    # ------------------------------------------------------------------
    # session plumbing
    # ------------------------------------------------------------------
    def _cut_session(self, sess: _Session, frame: dict[str, Any] | None) -> None:
        """Terminate a session from the push side without assuming the
        outbound queue has capacity: the parting ``error`` frame and the
        writer sentinel are enqueued only if they fit; a queue too full
        even for the sentinel gets its writer task cancelled instead
        (the writer's ``finally`` closes the transport either way)."""
        if sess.closed:
            return
        sess.closed = True
        if frame is not None:
            with contextlib.suppress(asyncio.QueueFull):
                sess.queue.put_nowait(frame)
        try:
            sess.queue.put_nowait(None)  # writer task: drain and close
        except asyncio.QueueFull:
            if sess.task is not None:
                sess.task.cancel()

    def _push(self, sess: _Session, frame: dict[str, Any]) -> None:
        """Enqueue one outbound frame, applying push-pressure rules."""
        if sess.closed:
            return
        depth = sess.queue.qsize()
        if depth >= self.disconnect_at - 1:
            # the peer has stopped reading: cut it off rather than buffer
            self._cut_session(
                sess, error_frame("slow-consumer", "outbound queue overflow")
            )
            return
        if depth >= self.throttle_at and not sess.throttled:
            sess.throttled = True
            self.core.note_throttle()
            sess.queue.put_nowait(
                {"type": "throttle", "queued": depth, "limit": self.disconnect_at}
            )
        elif depth < self.throttle_at // 2:
            sess.throttled = False
        sess.queue.put_nowait(frame)

    def _broadcast_verdict(self, verdict: dict[str, Any]) -> None:
        frame = {
            "type": "verdict",
            "watch_seq": verdict["watch_seq"],
            "name": verdict["name"],
            "passed": verdict["passed"],
            "decided_at": verdict["decided_at"],
        }
        for sess in self._sessions.values():
            if sess.role == "client":
                self._push(sess, frame)

    def _flush_replication(self) -> None:
        """Push newly appended log records to every replica session."""
        for sess in self._sessions.values():
            if sess.role != "replica":
                continue
            for rec in self.core.records_from(sess.repl_cursor):
                self._push(sess, {"type": "replicate", "record": rec})
                sess.repl_cursor = rec["seq"]

    def _after_mutation(self, verdicts: list[dict[str, Any]]) -> None:
        for verdict in verdicts:
            self._broadcast_verdict(verdict)
        self._flush_replication()

    async def _flush_log(self) -> None:
        """Durability batching, off the loop: when the log has a full
        unsynced batch, run its fsync in a worker thread.

        The lock dedups concurrent sessions — one flusher syncs for
        everyone, late arrivals re-check and find the batch drained.
        Appends themselves never sync (see ``EventLog.append``), so no
        coroutine ever reaches ``os.fsync`` on the loop thread; this is
        the pattern REP007 enforces project-wide.
        """
        if not self.core.log_needs_sync:
            return
        async with self._sync_lock:
            if not self.core.log_needs_sync:
                return
            await asyncio.get_running_loop().run_in_executor(
                None, self.core.flush_log
            )

    async def _writer_loop(self, sess: _Session) -> None:
        try:
            while True:
                frame = await sess.queue.get()
                if frame is None:
                    break
                sess.writer.write(encode_frame(frame))
                await sess.writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            sess.closed = True
            sess.writer.close()
            with contextlib.suppress(Exception):
                await sess.writer.wait_closed()

    async def _end_session(self, sess: _Session) -> None:
        sess.closed = True
        self._sessions.pop(sess.sid, None)
        self.core.session_gone(sess.sid)
        if sess.task is not None and not sess.task.done():
            try:
                sess.queue.put_nowait(None)
            except asyncio.QueueFull:
                sess.task.cancel()
            with contextlib.suppress(Exception):
                await asyncio.wait_for(sess.task, timeout=1.0)
        if sess.role == "client" and self._session_ended is not None:
            self._session_ended.set()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        sess: _Session | None = None
        try:
            hello = await read_frame_async(reader, self.max_frame_bytes)
            if hello is None:
                return
            if hello.get("type") != "hello":
                writer.write(encode_frame(
                    error_frame("bad-hello", "first frame must be hello")
                ))
                await writer.drain()
                return
            if hello.get("version") != PROTOCOL_VERSION:
                writer.write(encode_frame(error_frame(
                    "version",
                    f"server speaks protocol {PROTOCOL_VERSION}, "
                    f"client sent {hello.get('version')!r}",
                )))
                await writer.drain()
                return
            peer_nodes = hello.get("num_nodes")
            if peer_nodes is not None and peer_nodes != self.core.num_nodes:
                writer.write(encode_frame(error_frame(
                    "num-nodes",
                    f"service monitors {self.core.num_nodes} nodes, "
                    f"client expects {peer_nodes}",
                )))
                await writer.drain()
                return
            role = hello.get("role", "client")
            if role not in ("client", "replica"):
                writer.write(encode_frame(
                    error_frame("role", f"unknown role: {role!r}")
                ))
                await writer.drain()
                return
            sid = self._next_sid
            self._next_sid += 1
            sess = _Session(sid, role, writer, maxsize=self.disconnect_at)
            self._sessions[sid] = sess
            sess.task = asyncio.ensure_future(self._writer_loop(sess))
            self._push(sess, {
                "type": "welcome",
                "version": PROTOCOL_VERSION,
                "session": sid,
                "num_nodes": self.core.num_nodes,
                "role": role,
            })
            if role == "replica":
                sess.repl_cursor = int(hello.get("resume_seq", 0))
                self._flush_replication()
            await self._session_loop(reader, sess)
        except (ProtocolError, FrameTooLargeError) as exc:
            if sess is not None and not sess.closed:
                self._push(sess, error_frame("protocol", str(exc)))
            else:
                with contextlib.suppress(Exception):
                    writer.write(encode_frame(error_frame("protocol", str(exc))))
                    await writer.drain()
        except ConnectionError:
            pass
        finally:
            if sess is not None:
                await self._end_session(sess)
            else:
                writer.close()
                with contextlib.suppress(Exception):
                    await writer.wait_closed()

    async def _session_loop(
        self, reader: asyncio.StreamReader, sess: _Session
    ) -> None:
        while not sess.closed and not self._stopped:
            frame = await read_frame_async(reader, self.max_frame_bytes)
            if frame is None:
                return
            ftype = frame.get("type")
            try:
                if ftype == "event":
                    verdicts = self.core.submit_event(frame, session=sess.sid)
                    self._after_mutation(verdicts)
                    self._check_ingest_pressure(sess, frame)
                elif ftype == "close":
                    verdicts = self.core.submit_close(
                        frame.get("interval"),
                        frame.get("expected"),
                        session=sess.sid,
                    )
                    self._after_mutation(verdicts)
                    self._check_ingest_pressure(sess, frame)
                elif ftype == "watch":
                    verdicts = self.core.submit_watch(
                        frame.get("name"),
                        frame.get("condition"),
                        session=sess.sid,
                    )
                    self._after_mutation(verdicts)
                elif ftype == "stats":
                    stats = self.core.stats()
                    stats["sessions"] = len(self._sessions)
                    self._push(sess, {"type": "stats", "stats": stats})
                elif ftype == "bye":
                    self._push(sess, {"type": "bye"})
                    return
                else:
                    self._push(
                        sess,
                        error_frame("bad-frame", f"unknown frame type {ftype!r}"),
                    )
                    return
            except ValueError as exc:
                # core rejected the op (validation, parse, unknown names):
                # terminal for the session, reported before the close
                self._push(sess, error_frame("rejected", str(exc)))
                return
            await self._flush_log()

    def _check_ingest_pressure(self, sess: _Session, frame: dict) -> None:
        backlog = self.core.pending(sess.sid)
        if backlog > self.disconnect_at:
            self._cut_session(sess, error_frame(
                "backlog",
                f"unapplied backlog {backlog} exceeds {self.disconnect_at}; "
                "stream causally (sends before their receives)",
            ))
        elif backlog > self.throttle_at and not sess.throttled:
            sess.throttled = True
            self.core.note_throttle(frame.get("node"))
            self._push(sess, {
                "type": "throttle",
                "queued": backlog,
                "limit": self.disconnect_at,
            })
        elif backlog <= self.throttle_at // 2:
            sess.throttled = False

    # ------------------------------------------------------------------
    # replication tailing (standby side)
    # ------------------------------------------------------------------
    async def _tail_primary(self) -> None:
        """Replicate from the primary; returns only once an *established*
        stream is lost.  A primary that is unreachable (not up yet,
        refused, transient network error) or that vanishes mid-handshake
        is retried with backoff — :meth:`wait_primary_loss` resolving
        means replication genuinely ran and then died, never that a
        standby simply started first."""
        assert self.primary is not None
        host, port = self.primary
        backoff = 0.05
        while True:
            established = False
            try:
                reader, writer = await asyncio.open_connection(host, port)
            except OSError:
                await asyncio.sleep(backoff)
                backoff = min(backoff * 2, 2.0)
                continue
            try:
                writer.write(encode_frame({
                    "type": "hello",
                    "version": PROTOCOL_VERSION,
                    "role": "replica",
                    "num_nodes": self.core.num_nodes,
                    "resume_seq": self.core.last_seq,
                }))
                await writer.drain()
                welcome = await read_frame_async(reader, self.max_frame_bytes)
                if welcome is not None:
                    if welcome.get("type") != "welcome":
                        # an explicit rejection (version/num-nodes/role
                        # mismatch) is terminal misconfiguration, not a
                        # transient outage: propagate rather than retry
                        raise ProtocolError(
                            f"primary rejected replication: {welcome!r}"
                        )
                    established = True
                    backoff = 0.05
                    while True:
                        frame = await read_frame_async(
                            reader, self.max_frame_bytes
                        )
                        if frame is None:
                            return  # stream lost; promotion may proceed
                        if frame.get("type") == "replicate":
                            self.core.apply_record(frame["record"])
                            await self._flush_log()
                        elif frame.get("type") == "error":
                            raise ProtocolError(
                                f"primary error: {frame.get('message')}"
                            )
            except ConnectionError:
                if established:
                    return  # stream lost; promotion may proceed
                # connection died mid-handshake: treat as unreachable
            finally:
                writer.close()
                with contextlib.suppress(Exception):
                    await writer.wait_closed()
            await asyncio.sleep(backoff)
            backoff = min(backoff * 2, 2.0)


class ServiceHandle:
    """Run a :class:`MonitorService` on its own thread and event loop.

    Synchronous callers (pytest, benchmarks, a second process's CLI
    glue) construct the service *inside* the loop thread via the
    factory, then drive it through thread-safe calls::

        handle = ServiceHandle(lambda: MonitorService(num_nodes=4))
        handle.start()
        host, port = handle.address
        ...
        handle.stop()
    """

    def __init__(self, factory: Callable[[], MonitorService]) -> None:
        self._factory = factory
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._stop_evt: asyncio.Event | None = None
        self.service: MonitorService | None = None
        self._startup_error: BaseException | None = None

    def start(self, timeout: float = 10.0) -> "ServiceHandle":
        """Start the loop thread and the service; returns self."""
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("service failed to start in time")
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_evt = asyncio.Event()
        try:
            self.service = self._factory()
            await self.service.start()
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            return
        self._ready.set()
        await self._stop_evt.wait()
        await self.service.stop()

    @property
    def address(self) -> tuple[str, int]:
        """The service's listen address."""
        assert self.service is not None
        return self.service.address

    def call(
        self,
        coro_factory: Callable[[MonitorService], Coroutine[Any, Any, Any]],
        timeout: float = 10.0,
    ) -> Any:
        """Run ``coro_factory(service)`` on the service's loop."""
        assert self._loop is not None and self.service is not None
        fut = asyncio.run_coroutine_threadsafe(
            coro_factory(self.service), self._loop
        )
        return fut.result(timeout)

    def stats(self) -> dict[str, Any]:
        """Thread-safe core counters snapshot."""
        async def _get(service: MonitorService) -> dict[str, Any]:
            return service.core.stats()

        return self.call(_get)

    def promote(self) -> list[dict[str, Any]]:
        """Thread-safe standby promotion."""
        async def _promote(service: MonitorService) -> list[dict[str, Any]]:
            return await service.promote()

        return self.call(_promote)

    def stop(self, timeout: float = 10.0) -> None:
        """Stop the service and join the loop thread (idempotent)."""
        if self._thread is None:
            return
        if self._loop is not None and self._stop_evt is not None:
            with contextlib.suppress(RuntimeError):
                self._loop.call_soon_threadsafe(self._stop_evt.set)
        self._thread.join(timeout)
        self._thread = None

    def __enter__(self) -> "ServiceHandle":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()
